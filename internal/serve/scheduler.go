// Package serve turns the placer into a placement service: a bounded
// worker pool multiplexes many concurrent placement jobs submitted over a
// job API (Scheduler for library callers, Server for HTTP/JSON — see
// cmd/fbplaced).
//
// Three properties carry the design, all inherited from earlier layers:
//
//   - Preemption is safe because checkpoints are bit-identical. When a
//     higher-priority job arrives and no worker is free, the scheduler
//     asks the lowest-priority running job to stop at its next level
//     boundary (placer.Config.Preempt). The victim snapshots via
//     internal/ckpt, requeues, and later resumes — on any worker, since
//     the worker count is excluded from the resume fingerprint — and its
//     final positions are bit-for-bit what an uninterrupted run produces.
//   - Caching is safe because placement is deterministic. Results are
//     cached in an LRU keyed by the netlist and config fingerprints of
//     internal/ckpt; identical submissions return the cached placement
//     (and concurrent identical submissions coalesce into one run).
//   - Degradation is graceful because failures are structured. A failed
//     preemption snapshot keeps the victim running (recorded in the
//     degradation log), a failed checkpoint never aborts a run, and
//     worker-pool shutdown drains through the same snapshot machinery so
//     a restarted scheduler resumes the interrupted jobs.
package serve

import (
	"bytes"
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"sync"

	"fbplace/internal/certify"
	"fbplace/internal/degrade"
	"fbplace/internal/faultsim"
	"fbplace/internal/obs"
	"fbplace/internal/placer"
)

// acceptFault rejects a job at admission, exercising structured 503
// handling under concurrent load (the fault-suite satellite).
var acceptFault = faultsim.Register("serve.accept",
	"a job submission is rejected at admission")

// ErrShuttingDown is returned by Submit once Shutdown has begun.
var ErrShuttingDown = errors.New("serve: scheduler is shutting down")

// ErrUnknownJob is returned for job IDs the scheduler does not know.
var ErrUnknownJob = errors.New("serve: unknown job")

// Options configures a Scheduler. The zero value is usable: two workers,
// sequential per-job realization, a 64-entry cache, and an ephemeral
// state directory.
type Options struct {
	// Workers is the worker-pool size (concurrent placements). Default 2.
	Workers int
	// JobWorkers bounds each placement's internal realization
	// parallelism (placer.Config.Workers). Default 1: the pool, not the
	// job, owns the machine's parallelism. Results are bit-identical
	// across any value by the placer's determinism contract.
	JobWorkers int
	// CacheEntries sizes the LRU result cache. 0 selects the default of
	// 64; negative disables caching entirely.
	CacheEntries int
	// StateDir is where per-job state (job.json, checkpoints) lives, so
	// a restarted scheduler resumes interrupted jobs. Empty selects a
	// fresh temporary directory (no cross-restart recovery).
	StateDir string
	// FileRoot is the directory Spec.File references resolve under.
	// Empty (the default) disables file references: a submission naming a
	// file is rejected rather than allowed to open arbitrary server
	// paths.
	FileRoot string
	// Retain is each job's progress-stream replay window (events kept
	// for late subscribers). 0 selects obs.DefaultRetain.
	Retain int
	// Obs receives the scheduler's serve.* counters and gauges. Nil
	// creates an internal recorder (always available via Stats).
	Obs *obs.Recorder

	// Certify independently re-certifies every completed placement before
	// it can reach the result cache or a client (internal/certify):
	// positions, overlap and movebound-violation recounts and the HPWL are
	// re-derived by the scheduler's own checker, on top of the placer's
	// per-run certificates (placer.CertifyFinal is forced onto each
	// attempt, including checkpoint resumes). An uncertifiable result is
	// quarantined under the job's state directory and retried once in safe
	// mode — conservative engines, sequential, no checkpoints — and a
	// repeat failure fails the job terminally with the result_uncertified
	// error code.
	Certify bool

	// QueueLimit bounds the queue depth; submissions past it are refused
	// with ErrQueueFull (HTTP 429). 0 selects the default of 64, negative
	// disables the bound. Cache hits and coalesced submissions never
	// consume a queue slot and are exempt.
	QueueLimit int
	// MemBudget is the process memory budget in bytes: jobs whose
	// predicted peak exceeds it are refused outright, and job starts are
	// gated so the running jobs' predicted peaks sum below it. 0 selects
	// the default (three quarters of available RAM, 4 GiB fallback),
	// negative disables memory governance.
	MemBudget int64
	// NoProgress is the watchdog's no-progress deadline: a running
	// attempt whose heartbeat is older earns a strike and is requeued
	// through the checkpoint path. 0 selects the default of 2 minutes,
	// negative disables the watchdog.
	NoProgress time.Duration
	// StuckStrikes is how many consecutive no-progress attempts fail a
	// job terminally with JobStuckError. 0 selects the default of 3.
	StuckStrikes int
	// GovernTick is the governor cadence (memory sampling, watchdog scan,
	// disk check, GC). 0 selects the default of 1s, negative disables the
	// governor entirely (watchdog, memory preemption and GC with it).
	GovernTick time.Duration
	// DiskLowBytes is the free-space watermark below which new attempts
	// run without checkpointing. 0 selects the default of 128 MiB,
	// negative disables the check.
	DiskLowBytes int64
	// GCKeepTerminal caps how many terminal jobs are retained (in memory
	// and on disk); older ones are garbage-collected and their IDs answer
	// 404 afterwards. 0 selects the default of 256, negative retains
	// everything.
	GCKeepTerminal int
	// GCOrphanAge is how old an on-disk job directory with no in-memory
	// job must be before the GC removes it. 0 selects the default of 5
	// minutes.
	GCOrphanAge time.Duration
}

func (o *Options) fill() {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.JobWorkers <= 0 {
		o.JobWorkers = 1
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 64
	}
	if o.QueueLimit == 0 {
		o.QueueLimit = 64
	}
	if o.MemBudget == 0 {
		o.MemBudget = defaultMemBudget()
	}
	if o.NoProgress == 0 {
		o.NoProgress = 2 * time.Minute
	}
	if o.StuckStrikes <= 0 {
		o.StuckStrikes = 3
	}
	if o.GovernTick == 0 {
		o.GovernTick = time.Second
	}
	if o.DiskLowBytes == 0 {
		o.DiskLowBytes = 128 << 20
	}
	if o.GCKeepTerminal == 0 {
		o.GCKeepTerminal = 256
	}
	if o.GCOrphanAge == 0 {
		o.GCOrphanAge = 5 * time.Minute
	}
}

// Scheduler multiplexes placement jobs over a bounded worker pool with
// priorities, preemption, an idempotent result cache and crash-safe
// per-job state. Create with NewScheduler; stop with Shutdown.
type Scheduler struct {
	opt      Options
	rec      *obs.Recorder
	stateDir string

	mu       sync.Mutex
	cond     *sync.Cond
	queue    jobQueue             // guarded by mu
	jobs     map[string]*Job      // guarded by mu
	order    []*Job               // guarded by mu
	running  map[string]*Job      // guarded by mu
	flights  map[cacheKey]*flight // guarded by mu
	seq      uint64               // guarded by mu
	idle     int                  // guarded by mu
	shutdown bool                 // guarded by mu

	// Governance state (see govern.go for the policies).
	committed  int64       // guarded by mu — sum of running jobs' predicted peaks
	memBlocked bool        // guarded by mu — a queued job could not start for memory
	brownout   int         // guarded by mu — current ladder level
	lowDisk    bool        // guarded by mu — checkpointing disabled for new attempts
	measured   int64       // guarded by mu — last sampled process heap
	doneTimes  []time.Time // guarded by mu — completion ring for the drain rate

	wg    sync.WaitGroup
	gwg   sync.WaitGroup // governor goroutine; stopped after the workers drain
	quit  chan struct{}  // closed to stop the governor
	stop  sync.Once      // closes quit exactly once
	dl    *degrade.Log   // brownout/disk/watchdog degradation entries
	cache *resultCache
}

// flight tracks one in-progress placement and the identical submissions
// coalesced onto it (single-flight): followers wait for the leader's
// result instead of burning workers on a placement that is already
// running.
type flight struct {
	leader    *Job
	followers []*Job
}

// NewScheduler creates the state directory, recovers any persisted
// non-terminal jobs from a previous process, and starts the worker pool.
func NewScheduler(opt Options) (*Scheduler, error) {
	opt.fill()
	rec := opt.Obs
	if rec == nil {
		rec = obs.New(nil)
	}
	dir := opt.StateDir
	if dir == "" {
		d, err := os.MkdirTemp("", "fbplaced-")
		if err != nil {
			return nil, fmt.Errorf("serve: state dir: %w", err)
		}
		dir = d
	}
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: state dir: %w", err)
	}
	s := &Scheduler{
		opt:      opt,
		rec:      rec,
		stateDir: dir,
		jobs:     map[string]*Job{},
		running:  map[string]*Job{},
		flights:  map[cacheKey]*flight{},
		quit:     make(chan struct{}),
		dl:       degrade.New(rec),
		cache:    newResultCache(opt.CacheEntries),
	}
	s.cond = sync.NewCond(&s.mu)
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.wg.Add(opt.Workers)
	for i := 0; i < opt.Workers; i++ {
		go s.worker()
	}
	if opt.GovernTick > 0 {
		s.gwg.Add(1)
		go s.governLoop()
	}
	return s, nil
}

// StateDir returns the scheduler's state directory.
func (s *Scheduler) StateDir() string { return s.stateDir }

// Obs returns the recorder carrying the serve.* counters and gauges.
func (s *Scheduler) Obs() *obs.Recorder { return s.rec }

// Submit admits one job: it loads the instance, prices it against the
// admission limits (memory budget, queue bound, brownout — see
// govern.go), consults the result cache and in-flight placements, and
// either finishes the job immediately (cache hit), attaches it to an
// identical running placement (single-flight), or enqueues it — possibly
// asking a lower-priority running job to preempt itself at its next
// level boundary. Rejections are *AdmissionError with a Retry-After hint
// where retrying can help.
func (s *Scheduler) Submit(spec Spec) (*Job, error) {
	if err := acceptFault.Check(); err != nil {
		s.rec.Count("serve.rejected", 1)
		return nil, fmt.Errorf("serve: admission: %w", err)
	}
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	s.seq++
	seq := s.seq
	s.mu.Unlock()

	j, err := newJob(fmt.Sprintf("j%08d", seq), seq, spec, s.opt.Retain, s.opt.FileRoot)
	if err != nil {
		s.rec.Count("serve.badspec", 1)
		return nil, err
	}
	if s.opt.MemBudget > 0 && j.est.PeakBytes > s.opt.MemBudget {
		// The job could never be started; retrying cannot help.
		s.rec.Count("serve.rejected", 1)
		s.rec.Count("serve.rejected.overbudget", 1)
		return nil, &AdmissionError{
			Status: 503,
			Detail: fmt.Sprintf("predicted peak %d bytes > budget %d bytes (%d cells, %d pins, %d levels)",
				j.est.PeakBytes, s.opt.MemBudget, j.est.Cells, j.est.Pins, j.est.Levels),
			err: ErrOverBudget,
		}
	}
	j.dir = filepath.Join(s.stateDir, "jobs", j.ID)
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: job dir: %w", err)
	}
	s.installContext(j)

	var hit *Result
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		// The job never became visible: release its deadline timer and
		// drop the just-created state dir so a drain leaves nothing behind.
		j.cancel()
		_ = os.RemoveAll(j.dir)
		return nil, ErrShuttingDown
	}
	// Decide whether this submission needs a queue slot before it becomes
	// visible: cache hits and coalesced followers ride work that is
	// already paid for and are exempt from the queue bound and brownout.
	var flightHit *flight
	willQueue := true
	if !spec.NoCache {
		if res, ok := s.cache.get(j.key); ok {
			hit = res
			willQueue = false
		} else if fl, ok := s.flights[j.key]; ok {
			flightHit = fl
			willQueue = false
		}
	}
	if willQueue {
		if reject := s.admitQueuedLocked(); reject != nil {
			s.mu.Unlock()
			j.cancel()
			_ = os.RemoveAll(j.dir)
			return nil, reject
		}
	}
	s.rec.Count("serve.submitted", 1)
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
	j.bc.Emit(obs.Event{Type: "state", Name: string(StateQueued)})
	switch {
	case spec.NoCache:
		s.rec.Count("serve.cache.bypassed", 1)
		heap.Push(&s.queue, j)
		s.cond.Signal()
		s.maybePreemptLocked(j.Priority())
	case hit != nil:
		s.rec.Count("serve.cache.hits", 1)
	case flightHit != nil:
		s.rec.Count("serve.cache.misses", 1)
		j.mu.Lock()
		j.coalesced = true
		j.mu.Unlock()
		flightHit.followers = append(flightHit.followers, j)
		s.rec.Count("serve.coalesced", 1)
	default:
		s.rec.Count("serve.cache.misses", 1)
		s.flights[j.key] = &flight{leader: j}
		heap.Push(&s.queue, j)
		s.cond.Signal()
		s.maybePreemptLocked(j.Priority())
	}
	s.updateGaugesLocked()
	s.mu.Unlock()

	if hit != nil {
		j.mu.Lock()
		j.cached = true
		j.mu.Unlock()
		s.finishDone(j, hit)
	} else {
		s.persist(j)
	}
	return j, nil
}

// admitQueuedLocked applies the queue-slot admission limits: brownout
// level 2 sheds new submissions, a full queue refuses them with the
// drain-rate Retry-After.
func (s *Scheduler) admitQueuedLocked() *AdmissionError {
	if s.brownout >= brownoutShedSubmits {
		s.rec.Count("serve.rejected", 1)
		s.rec.Count("serve.rejected.brownout", 1)
		return &AdmissionError{
			Status:     503,
			Detail:     fmt.Sprintf("brownout level %d, placements are shedding arrivals", s.brownout),
			RetryAfter: s.retryAfterLocked(),
			err:        ErrBrownout,
		}
	}
	if s.opt.QueueLimit > 0 && s.queue.Len() >= s.opt.QueueLimit {
		s.rec.Count("serve.rejected", 1)
		s.rec.Count("serve.rejected.queue", 1)
		return &AdmissionError{
			Status:     429,
			Detail:     fmt.Sprintf("queue at its bound of %d", s.opt.QueueLimit),
			RetryAfter: s.retryAfterLocked(),
			err:        ErrQueueFull,
		}
	}
	return nil
}

// installContext wires the job's cancellation (and deadline, measured
// from submission) context.
func (s *Scheduler) installContext(j *Job) {
	ctx := context.Background()
	if j.spec.TimeoutMS > 0 {
		j.ctx, j.cancel = context.WithTimeout(ctx, time.Duration(j.spec.TimeoutMS)*time.Millisecond)
	} else {
		j.ctx, j.cancel = context.WithCancel(ctx)
	}
}

// maybePreemptLocked asks the weakest running job to yield when a job of
// higher priority has to wait for a worker. The victim is the running job
// with the lowest priority strictly below pri (newest submission on
// ties), and the request takes effect at the victim's next level
// boundary, once its snapshot is durably on disk.
func (s *Scheduler) maybePreemptLocked(pri int) {
	if s.idle > 0 {
		return
	}
	var victim *Job
	for _, r := range s.running {
		if r.Priority() >= pri || r.preempt.Load() {
			continue
		}
		if victim == nil || r.Priority() < victim.Priority() ||
			(r.Priority() == victim.Priority() && r.Seq > victim.Seq) {
			victim = r
		}
	}
	if victim != nil {
		victim.preempt.Store(true)
		s.rec.Count("serve.preempt.requests", 1)
	}
}

// Job returns a submitted job by ID.
func (s *Scheduler) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns all known jobs in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Job(nil), s.order...)
}

// Cancel stops a job: a queued job finishes as canceled immediately, a
// running job's context is canceled and the worker finishes it. Canceling
// a terminal job is a no-op.
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if j.State().Terminal() {
		s.mu.Unlock()
		return nil
	}
	j.mu.Lock()
	j.userCanceled = true
	j.mu.Unlock()
	if _, isRunning := s.running[j.ID]; isRunning {
		s.mu.Unlock()
		j.cancel()
		return nil
	}
	// Queued (in the heap, or coalesced onto a flight): finalize now.
	// A follower detaches from its flight; a canceled leader's flight
	// dissolves and its followers are promoted — in this same critical
	// section, so a concurrent identical Submit either still sees the
	// old flight or the promoted one, never a window with neither. The
	// heap entry, if any, is pruned so the queue-depth gauge stays
	// honest (the worker's state check still skips any stragglers).
	var orphans []*Job
	if fl, ok := s.flights[j.key]; ok {
		if fl.leader == j {
			delete(s.flights, j.key)
			orphans = fl.followers
		} else {
			kept := fl.followers[:0]
			for _, f := range fl.followers {
				if f != j {
					kept = append(kept, f)
				}
			}
			fl.followers = kept
		}
	}
	for i, qj := range s.queue {
		if qj == j {
			heap.Remove(&s.queue, i)
			break
		}
	}
	j.mu.Lock()
	j.errText = "canceled while queued"
	j.mu.Unlock()
	j.setState(StateCanceled)
	s.promoteLocked(orphans)
	s.updateGaugesLocked()
	s.mu.Unlock()
	j.cancel()
	s.rec.Count("serve.canceled", 1)
	s.persist(j)
	s.cleanupCkpt(j)
	return nil
}

// worker is one pool goroutine: it claims the highest-priority queued job
// and runs it to its next terminal (or preempted) transition.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// next blocks until a runnable job or shutdown. Jobs canceled while
// queued are skipped here.
func (s *Scheduler) next() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.shutdown {
			return nil
		}
		if j := s.claimLocked(); j != nil {
			return j
		}
		s.idle++
		s.cond.Wait()
		s.idle--
	}
}

// claimLocked pops the best-priority queued job whose predicted memory
// footprint fits next to the running set, commits its footprint, and
// moves it to running. Jobs that do not fit stay queued (in order) and
// raise the memory-blocked flag, which arms brownout level 1 and the
// governor's memory preemption.
func (s *Scheduler) claimLocked() *Job {
	var skipped []*Job
	var picked *Job
	for s.queue.Len() > 0 {
		j := heap.Pop(&s.queue).(*Job)
		if j.State() != StateQueued {
			continue
		}
		if !s.fitsLocked(j) {
			skipped = append(skipped, j)
			continue
		}
		picked = j
		break
	}
	for _, sj := range skipped {
		heap.Push(&s.queue, sj)
	}
	s.memBlocked = picked == nil && len(skipped) > 0
	if picked != nil {
		s.running[picked.ID] = picked
		s.committed += picked.est.PeakBytes
	}
	s.updateGaugesLocked()
	return picked
}

// runJob executes one placement attempt: resume from the job's checkpoint
// when one exists (preempted or recovered jobs), fresh otherwise, with the
// scheduler's plumbing (obs stream, per-job checkpoint dir, preemption
// poll) injected into the config.
func (s *Scheduler) runJob(j *Job) {
	if j.State().Terminal() {
		// Canceled between dequeue and here; just release the slot.
		s.release(j)
		return
	}
	// Each attempt runs under its own context so the watchdog can cancel
	// a stalled attempt without killing the job: the job's context (user
	// cancel, deadline) stays authoritative through the parent.
	actx, acancel := j.beginAttempt()
	defer acancel()
	j.setState(StateRunning)
	s.persist(j)
	rec := obs.New(jobSink{j})
	rec.SetProgress(func(string) { j.beat() })
	cfg := j.cfg
	cfg.Obs = rec
	cfg.Workers = s.opt.JobWorkers
	if s.opt.Certify {
		// Certification observes the trajectory without steering it, so the
		// mode is absent from the config fingerprint and the cache key is
		// unchanged.
		cfg.Certify = placer.CertifyFinal
	}
	s.mu.Lock()
	ckptOn := !s.lowDisk
	s.mu.Unlock()
	if ckptOn {
		cfg.Checkpoint = placer.Checkpoint{Dir: j.ckptDir()}
	} else {
		// Low disk: run without snapshots (and therefore without
		// preemptibility) rather than risk filling the disk mid-write.
		s.rec.Count("serve.ckpt.disabled", 1)
	}
	j.setCkptEnabled(ckptOn)
	stall := func() {
		if stallFault.Check() != nil {
			// Injected stall: stop making progress until the watchdog (or a
			// cancel/shutdown) ends the attempt.
			s.rec.Count("serve.stalls", 1)
			<-actx.Done()
		}
	}
	// The stall site fires here (a wedge before any level completes — the
	// path that accumulates strikes toward JobStuck, since completed levels
	// reset them) and at every level boundary via the preempt poll (a wedge
	// mid-run, where the completed level's snapshot makes the requeue
	// resumable).
	stall()
	cfg.Preempt = func() bool {
		stall()
		return j.preempt.Load()
	}
	s.rec.Count("serve.placements", 1)

	j.mu.Lock()
	resume := j.resumable
	j.mu.Unlock()
	var rep *placer.Report
	var err error
	if resume {
		rep, err = placer.Resume(actx, j.n, j.ckptDir(), cfg)
		var re *placer.ResumeError
		if errors.As(err, &re) {
			// No usable snapshot (all generations torn, or the directory
			// vanished): fall back to a fresh run. Determinism makes the
			// fresh result bit-identical to the resumed one.
			s.rec.Count("serve.resume.fallbacks", 1)
			j.restoreStart()
			rep, err = placer.PlaceCtx(actx, j.n, cfg)
		} else if err == nil || errors.Is(err, placer.ErrPreempted) {
			s.rec.Count("serve.resumes", 1)
		}
	} else {
		j.restoreStart()
		rep, err = placer.PlaceCtx(actx, j.n, cfg)
	}
	rec.Flush()

	// Certification gate: the scheduler re-certifies the attempt's result
	// itself, before anything can reach the cache or a client — the
	// placer's certificates guard its internals, this one guards the
	// boundary (and the resume path re-enters here like any attempt). A
	// failed certificate — the scheduler's or one escaping the placer —
	// quarantines the snapshot and earns one safe-mode retry.
	if err == nil && s.opt.Certify {
		err = s.certifyResult(actx, j, rep)
	}
	var ce *certify.Error
	if errors.As(err, &ce) {
		rep, err = s.safeRetry(actx, j, cfg, ce)
	}

	var pe *placer.PreemptedError
	switch {
	case err == nil:
		// Placer-internal certify repairs happened on the job's recorder;
		// surface them on the service counters next to serve-level ones.
		for _, d := range rep.Degradations {
			if d.Stage == "certify" && d.Fallback == "safe-mode" {
				s.rec.Count("certify.fail", 1)
				s.rec.Count("certify.repair", 1)
			}
		}
		s.rec.Count("serve.degradations", float64(len(rep.Degradations)))
		s.release(j)
		s.completeFlight(j, buildResult(j, rep))
	case errors.As(err, &pe):
		s.requeuePreempted(j)
	case j.ctx.Err() != nil && errors.Is(err, j.ctx.Err()):
		s.finishInterrupted(j)
	case actx.Err() != nil:
		// Only the attempt was canceled: the watchdog struck a stalled
		// run. Requeue through the checkpoint path or, past the strike
		// budget, fail terminally.
		s.watchdogRequeue(j)
	case errors.As(err, &ce):
		// The safe-mode retry could not produce a certifiable result
		// either: terminal, with the offending snapshots quarantined.
		j.mu.Lock()
		j.errCode = "result_uncertified"
		j.mu.Unlock()
		s.rec.Count("certify.uncertified", 1)
		s.release(j)
		s.failFlight(j, err.Error())
	default:
		s.release(j)
		s.failFlight(j, err.Error())
	}
}

// certifyResult independently certifies a finished attempt's final
// positions against its report, on the scheduler's own checker — the gate
// must not trust the run it is gating. Context errors pass through as-is:
// an aborted check says nothing about the result.
func (s *Scheduler) certifyResult(ctx context.Context, j *Job, rep *placer.Report) error {
	chk := &certify.Checker{Obs: s.rec, Ctx: ctx, Level: -1}
	return chk.Placement(j.n, j.mbs, certify.Reported{
		HPWL:          rep.HPWL,
		Violations:    rep.Violations,
		Overlaps:      rep.Overlaps,
		Legalized:     !j.cfg.SkipLegalization,
		TargetDensity: j.cfg.TargetDensity,
	})
}

// safeRetry is the scheduler's certify-and-repair step: the offending
// positions are quarantined, the job rewinds to its load-time state and
// re-places once in safe mode — conservative engines, sequential, no
// checkpoints or preemption, sharing no state with the attempt that
// produced the wrong answer — and the retried result is certified again.
// A second failure is quarantined too and propagates; runJob then fails
// the job terminally as result_uncertified.
func (s *Scheduler) safeRetry(ctx context.Context, j *Job, cfg placer.Config, ce *certify.Error) (*placer.Report, error) {
	s.rec.Count("certify.fail", 1)
	s.quarantine(j, ce)
	s.dl.Add("certify", "serve-safe-mode", fmt.Sprintf("job %s: %s", j.ID, ce.Error()))
	s.rec.Count("certify.repair", 1)
	safe := cfg
	safe.SafeMode = true
	safe.NoPairPass = true
	safe.ParallelWindows = false
	safe.Workers = 1
	safe.Checkpoint = placer.Checkpoint{}
	safe.Preempt = nil
	j.restoreStart()
	rep, err := placer.PlaceCtx(ctx, j.n, safe)
	if err == nil {
		err = s.certifyResult(ctx, j, rep)
	}
	var ce2 *certify.Error
	switch {
	case errors.As(err, &ce2):
		s.rec.Count("certify.fail", 1)
		s.quarantine(j, ce2)
	case err == nil:
		// Record the repair on the result itself, so clients (and the
		// load-test verifier) can tell this placement came from the
		// safe-mode trajectory. The fallback name differs from the placer's
		// internal "safe-mode" entries, which runJob mines into counters.
		rep.Degradations = append(rep.Degradations, degrade.Event{
			Stage: "certify", Fallback: "serve-safe-mode", Detail: ce.Error(),
		})
	}
	return rep, err
}

// quarantine preserves an uncertifiable result for post-mortem under the
// job's state directory: the violated certificate and the exact positions
// (hex float64 bits), captured before the retry rewinds them. Quarantine
// is diagnostics, not correctness — failures are counted, never fatal.
func (s *Scheduler) quarantine(j *Job, ce *certify.Error) {
	if j.dir == "" {
		return
	}
	dir := filepath.Join(j.dir, "quarantine")
	err := os.MkdirAll(dir, 0o755)
	if err == nil {
		detail := fmt.Sprintf("%s\nlayer: %s\nlevel: %d\ninvariant: %s\nwitness: %s\n",
			ce.Error(), ce.Layer, ce.Level, ce.Invariant, ce.Witness)
		err = os.WriteFile(filepath.Join(dir, "certify.txt"), []byte(detail), 0o644)
	}
	if err == nil {
		var buf bytes.Buffer
		for i := range j.n.X {
			fmt.Fprintf(&buf, "%016x %016x\n",
				math.Float64bits(j.n.X[i]), math.Float64bits(j.n.Y[i]))
		}
		err = os.WriteFile(filepath.Join(dir, "positions.hex"), buf.Bytes(), 0o644)
	}
	if err != nil {
		s.rec.Count("certify.quarantine.errors", 1)
		return
	}
	s.rec.Count("certify.quarantined", 1)
}

// release drops the job from the running set.
func (s *Scheduler) release(j *Job) {
	s.mu.Lock()
	s.releaseRunningLocked(j)
	s.updateGaugesLocked()
	s.mu.Unlock()
}

// releaseRunningLocked removes j from the running set and returns its
// committed memory. The broadcast wakes every idle worker: the freed
// headroom may unblock several memory-gated queued jobs at once.
func (s *Scheduler) releaseRunningLocked(j *Job) {
	if _, ok := s.running[j.ID]; !ok {
		return
	}
	delete(s.running, j.ID)
	s.committed -= j.est.PeakBytes
	if s.committed < 0 {
		s.committed = 0
	}
	s.cond.Broadcast()
}

// buildResult captures the final (bit-exact) positions and report.
func buildResult(j *Job, rep *placer.Report) *Result {
	j.mu.Lock()
	j.levelsPlanned = rep.Levels
	j.mu.Unlock()
	return &Result{
		X:            append([]float64(nil), j.n.X...),
		Y:            append([]float64(nil), j.n.Y...),
		HPWL:         rep.HPWL,
		Levels:       rep.Levels,
		Violations:   rep.Violations,
		Overlaps:     rep.Overlaps,
		GlobalTime:   rep.GlobalTime,
		LegalTime:    rep.LegalTime,
		Degradations: rep.Degradations,
		Certified:    rep.Certified,
	}
}

// completeFlight finishes a successful leader: the result is cached
// (unless bypassed) and every coalesced follower finishes with it too.
func (s *Scheduler) completeFlight(j *Job, res *Result) {
	var followers []*Job
	s.mu.Lock()
	if fl, ok := s.flights[j.key]; ok && fl.leader == j {
		followers = fl.followers
		delete(s.flights, j.key)
	}
	if !j.spec.NoCache {
		if ev := s.cache.put(j.key, res); ev > 0 {
			s.rec.Count("serve.cache.evictions", float64(ev))
		}
	}
	s.mu.Unlock()
	s.finishDone(j, res)
	for _, f := range followers {
		if f.State().Terminal() {
			continue
		}
		s.finishDone(f, res)
	}
}

// failFlight finishes a failed leader and re-enqueues its followers as
// independent jobs: a follower must not inherit a failure (deadline,
// cancellation mid-run) that belongs to the leader alone.
func (s *Scheduler) failFlight(j *Job, msg string) {
	s.mu.Lock()
	if fl, ok := s.flights[j.key]; ok && fl.leader == j {
		delete(s.flights, j.key)
		s.promoteLocked(fl.followers)
	}
	s.mu.Unlock()
	s.finishFailed(j, msg)
}

// promoteLocked re-enqueues detached followers, the first live one as the
// new leader of the rest. The caller holds s.mu and has already removed
// the old flight in the same critical section: a concurrent identical
// Submit can therefore never register a flight between the detach and
// this re-registration. Should one already exist for the key (the old
// flight was removed in an earlier critical section, as completeFlight's
// is), the followers merge into it instead of overwriting it — an
// overwrite would orphan that flight's leader and strand its followers.
func (s *Scheduler) promoteLocked(followers []*Job) {
	live := followers[:0]
	for _, f := range followers {
		if !f.State().Terminal() {
			live = append(live, f)
		}
	}
	if len(live) == 0 {
		return
	}
	lead := live[0]
	if fl, ok := s.flights[lead.key]; ok {
		fl.followers = append(fl.followers, live...)
		return
	}
	s.flights[lead.key] = &flight{leader: lead, followers: live[1:]}
	heap.Push(&s.queue, lead)
	s.cond.Signal()
	s.updateGaugesLocked()
}

// requeuePreempted puts a preempted job (its snapshot durably written)
// back in the queue to be resumed later, possibly by another worker.
func (s *Scheduler) requeuePreempted(j *Job) {
	j.preempt.Store(false)
	j.mu.Lock()
	j.preemptions++
	j.resumable = true
	j.mu.Unlock()
	s.rec.Count("serve.preemptions", 1)
	s.mu.Lock()
	s.releaseRunningLocked(j)
	heap.Push(&s.queue, j)
	s.cond.Signal()
	s.updateGaugesLocked()
	s.mu.Unlock()
	j.setState(StateQueued)
	s.persist(j)
}

// finishInterrupted handles a context-aborted run: a user cancellation
// finishes the job, a deadline fails it, and a shutdown hard-cancel
// requeues it (persisted as queued, resumable from its last level-stride
// snapshot) for the next process.
func (s *Scheduler) finishInterrupted(j *Job) {
	j.mu.Lock()
	user := j.userCanceled
	j.mu.Unlock()
	s.mu.Lock()
	drain := s.shutdown
	s.mu.Unlock()
	switch {
	case user:
		s.release(j)
		j.mu.Lock()
		j.errText = "canceled"
		j.mu.Unlock()
		j.setState(StateCanceled)
		s.rec.Count("serve.canceled", 1)
		s.persist(j)
		s.cleanupCkpt(j)
		s.detachFlight(j)
	case drain:
		j.preempt.Store(false)
		j.mu.Lock()
		j.resumable = hasCheckpoint(j.ckptDir())
		j.mu.Unlock()
		s.release(j)
		j.setState(StateQueued)
		s.persist(j)
	default:
		s.release(j)
		s.failFlight(j, "deadline exceeded: "+j.ctx.Err().Error())
	}
}

// detachFlight removes a canceled leader's flight and promotes its
// followers (in one critical section; see promoteLocked).
func (s *Scheduler) detachFlight(j *Job) {
	s.mu.Lock()
	if fl, ok := s.flights[j.key]; ok && fl.leader == j {
		delete(s.flights, j.key)
		s.promoteLocked(fl.followers)
	}
	s.mu.Unlock()
}

// finishDone finalizes a successful (or cache-served) job.
func (s *Scheduler) finishDone(j *Job, res *Result) {
	j.mu.Lock()
	j.result = res
	j.levelsPlanned = res.Levels
	j.mu.Unlock()
	j.setState(StateDone)
	s.rec.Count("serve.done", 1)
	s.noteDone()
	s.persist(j)
	s.cleanupCkpt(j)
}

// finishFailed finalizes a failed job.
func (s *Scheduler) finishFailed(j *Job, msg string) {
	j.mu.Lock()
	j.errText = msg
	j.mu.Unlock()
	j.setState(StateFailed)
	s.rec.Count("serve.failed", 1)
	s.noteDone()
	s.persist(j)
	s.cleanupCkpt(j)
}

// cleanupCkpt drops a terminal job's snapshots; they exist only to resume
// interrupted work. Removal failures cost disk, nothing else.
func (s *Scheduler) cleanupCkpt(j *Job) {
	if j.dir == "" {
		return
	}
	_ = os.RemoveAll(j.ckptDir())
}

// Shutdown drains the scheduler: submissions are refused, idle workers
// exit, and every running job is asked to checkpoint at its next level
// boundary and requeue (persisted for the next process). When ctx expires
// before the drain completes, the still-running jobs are hard-canceled —
// they remain resumable from their last per-level snapshot — and a
// non-nil error reports the overrun.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.shutdown {
		s.shutdown = true
		s.rec.Count("serve.shutdowns", 1)
		s.cond.Broadcast()
	}
	running := make([]*Job, 0, len(s.running))
	for _, j := range s.running {
		running = append(running, j)
	}
	s.mu.Unlock()
	for _, j := range running {
		j.preempt.Store(true)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	// The governor outlives the drain on purpose: a stalled attempt
	// (serve.stall, wedged solver) only unblocks when the watchdog cancels
	// it, so stopping the governor first could deadlock the drain.
	stopGovernor := func() {
		s.stop.Do(func() { close(s.quit) })
		s.gwg.Wait()
	}
	select {
	case <-done:
		stopGovernor()
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		still := make([]*Job, 0, len(s.running))
		for _, j := range s.running {
			still = append(still, j)
		}
		s.mu.Unlock()
		for _, j := range still {
			j.cancel()
		}
		<-done
		stopGovernor()
		return fmt.Errorf("serve: drain deadline exceeded, %d running jobs hard-canceled (resumable from their last level snapshot): %w",
			len(still), ctx.Err())
	}
}

// Stats is the /stats snapshot.
type Stats struct {
	// Counters and Gauges are the serve.* metrics (queue depth, running,
	// preemptions, cache hits/misses, degradations, ...).
	Counters map[string]float64 `json:"counters"`
	Gauges   map[string]float64 `json:"gauges"`
	// Jobs counts known jobs by state.
	Jobs map[string]int `json:"jobs"`
	// CacheEntries is the current LRU population, Workers the pool size.
	CacheEntries int `json:"cache_entries"`
	Workers      int `json:"workers"`
	// Governance is the resource-governance snapshot (see govern.go).
	Governance GovStats `json:"governance"`
}

// GovStats is the governance section of /stats: the brownout/watermark
// state an operator (or load balancer) steers by.
type GovStats struct {
	// Brownout is the current ladder level (0 off, 1 shed renders, 2 shed
	// submissions), BrownoutMode its name.
	Brownout     int    `json:"brownout"`
	BrownoutMode string `json:"brownout_mode"`
	// MemBudgetBytes/MemCommittedBytes are the budget and the running
	// jobs' predicted peaks; MemMeasuredBytes the last sampled heap.
	MemBudgetBytes    int64 `json:"mem_budget_bytes"`
	MemCommittedBytes int64 `json:"mem_committed_bytes"`
	MemMeasuredBytes  int64 `json:"mem_measured_bytes"`
	// MemBlocked reports a queued job waiting on memory headroom.
	MemBlocked bool `json:"mem_blocked"`
	// QueueLimit/QueueDepth are the admission bound and current depth.
	QueueLimit int `json:"queue_limit"`
	QueueDepth int `json:"queue_depth"`
	// LowDisk reports checkpointing disabled by the free-space watermark.
	LowDisk bool `json:"low_disk"`
	// RetryAfterS is the current backoff hint a rejected client would get.
	RetryAfterS float64 `json:"retry_after_s"`
	// Degradations lists the recorded governance degradation events
	// (brownout transitions, disk watermarks, watchdog strikes).
	Degradations []string `json:"degradations,omitempty"`
}

// Stats returns a consistent snapshot of the scheduler's metrics.
func (s *Scheduler) Stats() Stats {
	st := Stats{
		Counters:     s.rec.Counters(),
		Gauges:       s.rec.Gauges(),
		Jobs:         map[string]int{},
		CacheEntries: s.cache.len(),
		Workers:      s.opt.Workers,
	}
	s.mu.Lock()
	st.Governance = GovStats{
		Brownout:          s.brownout,
		BrownoutMode:      brownoutName(s.brownout),
		MemBudgetBytes:    s.opt.MemBudget,
		MemCommittedBytes: s.committed,
		MemMeasuredBytes:  s.measured,
		MemBlocked:        s.memBlocked,
		QueueLimit:        s.opt.QueueLimit,
		QueueDepth:        s.queue.Len(),
		LowDisk:           s.lowDisk,
		RetryAfterS:       s.retryAfterLocked().Seconds(),
	}
	s.mu.Unlock()
	for _, ev := range s.dl.Events() {
		st.Governance.Degradations = append(st.Governance.Degradations, ev.String())
	}
	for _, j := range s.Jobs() {
		st.Jobs[string(j.State())]++
	}
	return st
}

// Readiness is the /readyz view: whether the service should receive new
// traffic, and if not, why and when to retry.
type Readiness struct {
	Ready       bool    `json:"ready"`
	Reason      string  `json:"reason,omitempty"`
	RetryAfterS float64 `json:"retry_after_s,omitempty"`
}

// Readiness reports whether the scheduler should receive new traffic:
// not while draining, in brownout, or with a saturated queue. Liveness
// (/healthz) is separate and never degrades — the process is alive even
// when it is shedding.
func (s *Scheduler) Readiness() Readiness {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.shutdown:
		return Readiness{Reason: "draining"}
	case s.brownout > brownoutOff:
		return Readiness{Reason: "brownout", RetryAfterS: s.retryAfterLocked().Seconds()}
	case s.opt.QueueLimit > 0 && s.queue.Len() >= s.opt.QueueLimit:
		return Readiness{Reason: "queue_saturated", RetryAfterS: s.retryAfterLocked().Seconds()}
	default:
		return Readiness{Ready: true}
	}
}

func (s *Scheduler) updateGaugesLocked() {
	s.recomputeGovLocked()
	s.rec.Gauge("serve.queue.depth", float64(s.queue.Len()))
	s.rec.Gauge("serve.running", float64(len(s.running)))
	s.rec.Gauge("serve.jobs.known", float64(len(s.jobs)))
	s.rec.Gauge("serve.mem.committed", float64(s.committed))
	s.rec.Gauge("serve.brownout", float64(s.brownout))
	blocked := 0.0
	if s.memBlocked {
		blocked = 1
	}
	s.rec.Gauge("serve.queue.blocked", blocked)
}

// jobFile is the persisted form of a job (StateDir/jobs/<id>/job.json),
// enough for a restarted scheduler to resume it: the full spec (instances
// reload deterministically — synthetic chips regenerate from their seed,
// file references re-read) plus the lifecycle state.
type jobFile struct {
	ID          string `json:"id"`
	Seq         uint64 `json:"seq"`
	State       State  `json:"state"`
	Preemptions int    `json:"preemptions"`
	Error       string `json:"error,omitempty"`
	ErrorCode   string `json:"error_code,omitempty"`
	Spec        Spec   `json:"spec"`
}

// persist writes the job's state file atomically (temp + rename). A
// persist failure is counted, never fatal: the in-memory job keeps
// running, only restartability of this one job is lost.
func (s *Scheduler) persist(j *Job) {
	if j.dir == "" {
		return
	}
	j.mu.Lock()
	jf := jobFile{
		ID:          j.ID,
		Seq:         j.Seq,
		State:       j.state,
		Preemptions: j.preemptions,
		Error:       j.errText,
		ErrorCode:   j.errCode,
		Spec:        j.spec,
	}
	j.mu.Unlock()
	data, err := json.MarshalIndent(&jf, "", "  ")
	if err == nil {
		tmp := filepath.Join(j.dir, "job.json.tmp")
		err = os.WriteFile(tmp, data, 0o644)
		if err == nil {
			err = os.Rename(tmp, filepath.Join(j.dir, "job.json"))
		}
	}
	if err != nil {
		s.rec.Count("serve.persist.errors", 1)
	}
}

// hasCheckpoint reports whether dir holds at least one snapshot
// generation file.
func hasCheckpoint(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if len(name) > 5 && name[len(name)-5:] == ".fbck" {
			return true
		}
	}
	return false
}

// recover reloads persisted jobs from a previous process: non-terminal
// jobs re-enter the queue (resuming from their checkpoints when present),
// terminal ones come back as historical records without results.
func (s *Scheduler) recover() error {
	dir := filepath.Join(s.stateDir, "jobs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("serve: recover: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		data, rerr := os.ReadFile(filepath.Join(dir, e.Name(), "job.json"))
		if rerr != nil {
			continue // half-created job dir; nothing recoverable
		}
		var jf jobFile
		if json.Unmarshal(data, &jf) != nil || jf.ID == "" {
			continue
		}
		s.mu.Lock()
		if jf.Seq > s.seq {
			s.seq = jf.Seq
		}
		s.mu.Unlock()
		if jf.State.Terminal() {
			s.adopt(tombstoneJob(jf, jf.Error))
			continue
		}
		j, jerr := newJob(jf.ID, jf.Seq, jf.Spec, s.opt.Retain, s.opt.FileRoot)
		if jerr != nil {
			// The instance no longer loads (file reference gone): the job
			// cannot be resumed, record why.
			s.adopt(failedTombstone(jf, jerr.Error()))
			s.rec.Count("serve.failed", 1)
			continue
		}
		j.dir = filepath.Join(dir, e.Name())
		j.mu.Lock()
		j.preemptions = jf.Preemptions
		j.resumable = hasCheckpoint(j.ckptDir())
		j.mu.Unlock()
		s.installContext(j)
		s.rec.Count("serve.recovered", 1)
		s.mu.Lock()
		s.jobs[j.ID] = j
		s.order = append(s.order, j)
		j.bc.Emit(obs.Event{Type: "state", Name: string(StateQueued)})
		if fl, ok := s.flights[j.key]; ok && !j.spec.NoCache {
			j.mu.Lock()
			j.coalesced = true
			j.mu.Unlock()
			fl.followers = append(fl.followers, j)
			s.rec.Count("serve.coalesced", 1)
		} else {
			if !j.spec.NoCache {
				s.flights[j.key] = &flight{leader: j}
			}
			heap.Push(&s.queue, j)
		}
		s.updateGaugesLocked()
		s.mu.Unlock()
		s.persist(j)
	}
	return nil
}

// adopt registers a recovered terminal job.
func (s *Scheduler) adopt(j *Job) {
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
	s.mu.Unlock()
}

// tombstoneJob rebuilds a terminal job record (no result: results are not
// persisted across restarts, only lifecycle state is).
func tombstoneJob(jf jobFile, errText string) *Job {
	bc := obs.NewBroadcast(1)
	bc.Close()
	done := make(chan struct{})
	close(done)
	j := &Job{
		ID:        jf.ID,
		Seq:       jf.Seq,
		spec:      jf.Spec,
		bc:        bc,
		done:      done,
		state:     jf.State,
		errText:   errText,
		submitted: time.Now(),
	}
	j.preemptions = jf.Preemptions
	j.errCode = jf.ErrorCode
	j.ctx, j.cancel = context.WithCancel(context.Background())
	j.cancel()
	return j
}

// failedTombstone marks a recovered job that can no longer run.
func failedTombstone(jf jobFile, reason string) *Job {
	jf.State = StateFailed
	return tombstoneJob(jf, "recovery: "+reason)
}
