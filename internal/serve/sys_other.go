//go:build !linux

package serve

// memAvailable is unsupported off Linux; the budget default falls back.
func memAvailable() int64 { return 0 }

// diskFree is unsupported off Linux; low-disk degradation never engages.
func diskFree(string) (int64, bool) { return 0, false }
