package serve

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fbplace/internal/chipio"
	"fbplace/internal/gen"
	"fbplace/internal/obs"
)

// testSched starts a scheduler on a test temp dir and shuts it down on
// cleanup.
func testSched(t *testing.T, opt Options) *Scheduler {
	t.Helper()
	if opt.StateDir == "" {
		opt.StateDir = t.TempDir()
	}
	s, err := NewScheduler(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

func chipSpec(cells int, seed int64) Spec {
	return Spec{Chip: &gen.ChipSpec{NumCells: cells, Seed: seed}}
}

func waitDone(t *testing.T, j *Job, timeout time.Duration) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(timeout):
		t.Fatalf("job %s did not finish within %v (state %s)", j.ID, timeout, j.State())
	}
}

// waitLevel blocks until the job has completed at least one partitioning
// level, i.e. it is genuinely running — the synchronization point the
// preemption tests key on.
func waitLevel(t *testing.T, j *Job) {
	t.Helper()
	replay, live, cancel := j.Events(256)
	defer cancel()
	isLevel := func(e obs.Event) bool { return e.Type == obs.EventSpan && e.Name == "level" }
	for _, e := range replay {
		if isLevel(e) {
			return
		}
	}
	deadline := time.After(60 * time.Second)
	for {
		select {
		case e, open := <-live:
			if !open {
				t.Fatalf("job %s ended (state %s) before completing a level", j.ID, j.State())
			}
			if isLevel(e) {
				return
			}
		case <-deadline:
			t.Fatalf("job %s completed no level within 60s", j.ID)
		}
	}
}

func mustResult(t *testing.T, j *Job) *Result {
	t.Helper()
	res, err := j.Result()
	if err != nil {
		t.Fatalf("job %s result: %v", j.ID, err)
	}
	return res
}

func TestSubmitRunsToDone(t *testing.T) {
	s := testSched(t, Options{Workers: 1})
	j, err := s.Submit(chipSpec(500, 2))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, 60*time.Second)
	if j.State() != StateDone {
		t.Fatalf("state: got %s, want done", j.State())
	}
	res := mustResult(t, j)
	if len(res.X) == 0 || res.HPWL <= 0 || res.Levels <= 0 {
		t.Fatalf("implausible result: %d cells, HPWL %g, %d levels", len(res.X), res.HPWL, res.Levels)
	}
	st := j.Status()
	if st.LevelsDone == 0 || st.Cached || st.Coalesced {
		t.Fatalf("status: %+v", st)
	}
	ok, err := verifyDirect(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("served result differs from a direct placer run")
	}
}

// TestTerminalJobReleasesContext is the regression test for the
// deadline-timer leak the ctxrelease/mutexguard audit surfaced: a job
// admitted with TimeoutMS owns a context.WithTimeout deadline timer, and
// before the fix nothing canceled it when the job reached a terminal
// state — the timer (and the context it retains) stayed armed until the
// deadline fired, long after the result was served.
func TestTerminalJobReleasesContext(t *testing.T) {
	s := testSched(t, Options{Workers: 1})
	spec := chipSpec(300, 3)
	spec.TimeoutMS = int64((10 * time.Minute) / time.Millisecond)
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, 60*time.Second)
	if j.State() != StateDone {
		t.Fatalf("state: got %s, want done", j.State())
	}
	if j.ctx.Err() == nil {
		t.Fatal("terminal job's context is still live; its deadline timer leaks until TimeoutMS elapses")
	}
}

func TestPreemptionBitIdentity(t *testing.T) {
	s := testSched(t, Options{Workers: 1})
	victim, err := s.Submit(Spec{
		Chip:  &gen.ChipSpec{NumCells: 2000, Seed: 3},
		Knobs: Knobs{MaxLevels: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitLevel(t, victim)
	hi, err := s.Submit(Spec{Chip: &gen.ChipSpec{NumCells: 300, Seed: 4}, Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, hi, 120*time.Second)
	waitDone(t, victim, 120*time.Second)
	if hi.State() != StateDone || victim.State() != StateDone {
		t.Fatalf("states: hi=%s victim=%s", hi.State(), victim.State())
	}
	if victim.Preemptions() < 1 {
		t.Fatalf("victim was never preempted (preemptions=0); the single worker should have yielded to priority 5")
	}
	if got := s.Obs().Counter("serve.preemptions"); got < 1 {
		t.Fatalf("serve.preemptions counter: got %g, want >= 1", got)
	}
	if got := s.Obs().Counter("serve.resumes"); got < 1 {
		t.Fatalf("serve.resumes counter: got %g, want >= 1", got)
	}
	// The contract the whole scheduler rests on: a preempted, snapshotted
	// and resumed placement is bit-for-bit the uninterrupted placement.
	ok, err := verifyDirect(context.Background(), victim)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("preempted+resumed placement differs from an uninterrupted run")
	}
}

func TestDuplicateSubmissionHitsCache(t *testing.T) {
	s := testSched(t, Options{Workers: 1})
	a, err := s.Submit(chipSpec(400, 9))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, a, 60*time.Second)
	placements := s.Obs().Counter("serve.placements")

	b, err := s.Submit(chipSpec(400, 9))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, b, 10*time.Second)
	if !b.Status().Cached {
		t.Fatal("duplicate submission was not served from the cache")
	}
	if got := s.Obs().Counter("serve.placements"); got != placements {
		t.Fatalf("cache hit still ran a placement: %g -> %g", placements, got)
	}
	if got := s.Obs().Counter("serve.cache.hits"); got != 1 {
		t.Fatalf("serve.cache.hits: got %g, want 1", got)
	}
	ra, rb := mustResult(t, a), mustResult(t, b)
	if ra != rb {
		t.Fatal("cache hit should share the stored Result")
	}
}

func TestConcurrentDuplicatesCoalesce(t *testing.T) {
	s := testSched(t, Options{Workers: 1})
	// Fill the single worker so the duplicate pair stays queued together.
	filler, err := s.Submit(Spec{
		Chip: &gen.ChipSpec{NumCells: 2000, Seed: 5}, Priority: 9,
		Knobs: Knobs{MaxLevels: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitLevel(t, filler)
	a, err := s.Submit(chipSpec(400, 10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(chipSpec(400, 10))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, a, 120*time.Second)
	waitDone(t, b, 120*time.Second)
	waitDone(t, filler, 120*time.Second)
	if !b.Status().Coalesced {
		t.Fatal("second identical submission did not coalesce onto the first")
	}
	if got := s.Obs().Counter("serve.placements"); got != 2 {
		t.Fatalf("placements: got %g, want 2 (filler + one leader for the pair)", got)
	}
	if ra, rb := mustResult(t, a), mustResult(t, b); ra != rb {
		t.Fatal("coalesced jobs should share one Result")
	}
}

func TestNoCacheBypassesCacheAndFlight(t *testing.T) {
	s := testSched(t, Options{Workers: 1})
	a, err := s.Submit(chipSpec(400, 12))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, a, 60*time.Second)
	placements := s.Obs().Counter("serve.placements")
	spec := chipSpec(400, 12)
	spec.NoCache = true
	b, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, b, 60*time.Second)
	if b.Status().Cached || b.Status().Coalesced {
		t.Fatalf("NoCache job was served from cache/flight: %+v", b.Status())
	}
	if got := s.Obs().Counter("serve.placements"); got != placements+1 {
		t.Fatalf("NoCache job did not run its own placement: %g -> %g", placements, got)
	}
	if got := s.Obs().Counter("serve.cache.bypassed"); got != 1 {
		t.Fatalf("serve.cache.bypassed: got %g, want 1", got)
	}
	// Bit-identity still holds, it just was not cached.
	if ok, err := verifyDirect(context.Background(), b); err != nil || !ok {
		t.Fatalf("NoCache result differs from direct run (ok=%v err=%v)", ok, err)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s := testSched(t, Options{Workers: 1})
	filler, err := s.Submit(Spec{
		Chip: &gen.ChipSpec{NumCells: 2000, Seed: 6}, Priority: 9,
		Knobs: Knobs{MaxLevels: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitLevel(t, filler)
	q, err := s.Submit(chipSpec(400, 13))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(q.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, q, 10*time.Second)
	if q.State() != StateCanceled {
		t.Fatalf("state: got %s, want canceled", q.State())
	}
	if _, err := q.Result(); err == nil {
		t.Fatal("canceled job returned a result")
	}
	if err := s.Cancel(q.ID); err != nil {
		t.Fatalf("canceling a terminal job: %v", err)
	}
	if err := s.Cancel("no-such-job"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job: got %v, want ErrUnknownJob", err)
	}
	waitDone(t, filler, 120*time.Second)
}

func TestCancelRunningJob(t *testing.T) {
	s := testSched(t, Options{Workers: 1})
	j, err := s.Submit(Spec{
		Chip:  &gen.ChipSpec{NumCells: 2000, Seed: 7},
		Knobs: Knobs{MaxLevels: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitLevel(t, j)
	if err := s.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, 60*time.Second)
	if j.State() != StateCanceled {
		t.Fatalf("state: got %s, want canceled", j.State())
	}
	if got := s.Obs().Counter("serve.canceled"); got != 1 {
		t.Fatalf("serve.canceled: got %g, want 1", got)
	}
}

func TestJobDeadlineFailsJob(t *testing.T) {
	s := testSched(t, Options{Workers: 1})
	spec := Spec{
		Chip:      &gen.ChipSpec{NumCells: 2000, Seed: 8},
		Knobs:     Knobs{MaxLevels: 6},
		TimeoutMS: 100,
	}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, 60*time.Second)
	if j.State() != StateFailed {
		t.Fatalf("state: got %s, want failed (100ms deadline on a multi-second job)", j.State())
	}
	if st := j.Status(); st.Error == "" {
		t.Fatal("failed job carries no error text")
	}
}

func TestBadSpecs(t *testing.T) {
	s := testSched(t, Options{Workers: 1})
	cases := []Spec{
		{}, // no instance source
		{Chip: &gen.ChipSpec{NumCells: 100, Seed: 1}, Netlist: "CHIP 1 1"}, // two sources
		{Chip: &gen.ChipSpec{NumCells: 100, Seed: 1}, Knobs: Knobs{Mode: "annealing"}},
	}
	for i, spec := range cases {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("case %d: bad spec accepted", i)
		}
	}
	if got := s.Obs().Counter("serve.badspec"); got != float64(len(cases)) {
		t.Fatalf("serve.badspec: got %g, want %d", got, len(cases))
	}
	var se *SpecError
	_, err := s.Submit(Spec{})
	if !errors.As(err, &se) {
		t.Fatalf("missing source: got %v, want *SpecError", err)
	}
}

// TestCancelQueuedLeaderPromotesFollowers covers flight dissolution:
// canceling a queued leader must promote its coalesced followers to a
// flight of their own (they finish with a real result) and free the key
// so later identical submissions do not coalesce onto a dead flight.
func TestCancelQueuedLeaderPromotesFollowers(t *testing.T) {
	s := testSched(t, Options{Workers: 1})
	filler, err := s.Submit(Spec{
		Chip: &gen.ChipSpec{NumCells: 2000, Seed: 14}, Priority: 9,
		Knobs: Knobs{MaxLevels: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitLevel(t, filler)
	lead, err := s.Submit(chipSpec(400, 15))
	if err != nil {
		t.Fatal(err)
	}
	f1, err := s.Submit(chipSpec(400, 15))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s.Submit(chipSpec(400, 15))
	if err != nil {
		t.Fatal(err)
	}
	if !f1.Status().Coalesced || !f2.Status().Coalesced {
		t.Fatal("followers did not coalesce onto the queued leader")
	}
	if err := s.Cancel(lead.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, lead, 10*time.Second)
	if lead.State() != StateCanceled {
		t.Fatalf("leader state: got %s, want canceled", lead.State())
	}
	if got := s.Obs().Gauges()["serve.queue.depth"]; got != 1 {
		t.Fatalf("queue depth after canceling queued leader: got %g, want 1 (the promoted follower)", got)
	}
	waitDone(t, f1, 120*time.Second)
	waitDone(t, f2, 120*time.Second)
	if f1.State() != StateDone || f2.State() != StateDone {
		t.Fatalf("follower states: %s, %s", f1.State(), f2.State())
	}
	if ra, rb := mustResult(t, f1), mustResult(t, f2); ra != rb {
		t.Fatal("promoted followers should share one Result")
	}
	late, err := s.Submit(chipSpec(400, 15))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, late, 120*time.Second)
	if late.State() != StateDone {
		t.Fatalf("late duplicate state: got %s, want done", late.State())
	}
	waitDone(t, filler, 120*time.Second)
}

// TestFileSpecConfinedToRoot covers Spec.File confinement: references
// resolve under Options.FileRoot, escapes are rejected, and file
// references are disabled entirely when no root is configured.
func TestFileSpecConfinedToRoot(t *testing.T) {
	root := t.TempDir()
	inst, err := gen.Chip(gen.ChipSpec{NumCells: 300, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := chipio.Write(&buf, inst.N, inst.Movebounds); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "inst.fbp"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	s := testSched(t, Options{Workers: 1, FileRoot: root})
	j, err := s.Submit(Spec{File: "inst.fbp"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, 60*time.Second)
	if j.State() != StateDone {
		t.Fatalf("file job state: got %s, want done", j.State())
	}
	var se *SpecError
	for _, name := range []string{"../inst.fbp", "/etc/passwd", filepath.Join(root, "inst.fbp")} {
		if _, err := s.Submit(Spec{File: name}); !errors.As(err, &se) {
			t.Errorf("escaping file %q: got %v, want *SpecError", name, err)
		}
	}
	noRoot := testSched(t, Options{Workers: 1})
	if _, err := noRoot.Submit(Spec{File: "inst.fbp"}); !errors.As(err, &se) {
		t.Errorf("file reference without a root: got %v, want *SpecError", err)
	}
}

func TestSubmitAfterShutdownRefused(t *testing.T) {
	dir := t.TempDir()
	s, err := NewScheduler(Options{Workers: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(chipSpec(300, 1)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit after shutdown: got %v, want ErrShuttingDown", err)
	}
}
