//go:build race

package serve

// raceEnabled lets timing-calibrated tests (the chaos soak's watchdog
// window) widen their no-progress deadlines under the race detector's
// 10-20x slowdown, where healthy jobs legitimately gap longer between
// heartbeats than any sane production window.
const raceEnabled = true
