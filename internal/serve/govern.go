// Resource governance: the scheduler's defenses against overload. Four
// mechanisms share the state on Scheduler (all guarded by s.mu):
//
//   - Admission control. Every submission is priced by estimateJob; a job
//     whose predicted peak exceeds the whole memory budget is refused with
//     a structured over-budget error (503), and a job that would push the
//     queue past QueueLimit is refused queue-full (429). Both carry a
//     Retry-After computed from the observed completion rate (falling
//     back to the predicted wall time of the queued work).
//   - Memory-watermark start gating. Workers only start a queued job when
//     the sum of running jobs' predicted peaks plus its own fits the
//     budget (one job may always run, for liveness). When a queued job is
//     memory-blocked, the governor preempts the cheapest-to-resume
//     running job — fewest completed levels, then largest footprint —
//     through the checkpoint path, time-multiplexing memory at level
//     granularity instead of starving the queue.
//   - Brownout ladder. Level 1 (shed renders: SSE/SVG) when committed
//     memory crosses the high watermark or a queued job is memory
//     blocked; level 2 (shed new submissions too) when the queue is also
//     at least half full. Placements themselves are never shed: accepted
//     work always finishes. Transitions land in the degradation log as
//     degrade.brownout entries.
//   - Disk governance. The governor GCs terminal job directories beyond a
//     retention cap, removes orphaned job directories and stale
//     checkpoint generations, and — below DiskLowBytes of free space —
//     disables checkpointing for new attempts (degrading preemptibility,
//     recorded as degrade.disk) rather than risk torn snapshots.
package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"fbplace/internal/ckpt"
)

// Admission rejection sentinels, matched with errors.Is.
var (
	// ErrQueueFull rejects a submission that would overflow the bounded
	// queue (HTTP 429).
	ErrQueueFull = errors.New("serve: queue full")
	// ErrOverBudget rejects a job whose predicted peak memory exceeds the
	// whole process budget — it could never be started (HTTP 503).
	ErrOverBudget = errors.New("serve: predicted footprint exceeds the memory budget")
	// ErrBrownout rejects submissions while the service is shedding load
	// (HTTP 503).
	ErrBrownout = errors.New("serve: brownout, shedding submissions")
)

// AdmissionError is a structured admission rejection: which limit was
// hit (the wrapped sentinel), the suggested HTTP status, and the
// server's backoff hint (zero when retrying cannot help, as for
// over-budget jobs).
type AdmissionError struct {
	Status     int
	Detail     string
	RetryAfter time.Duration
	err        error
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("serve: admission: %v (%s)", e.err, e.Detail)
}

func (e *AdmissionError) Unwrap() error { return e.err }

// Code is the machine-readable error-envelope code.
func (e *AdmissionError) Code() string {
	switch {
	case errors.Is(e.err, ErrQueueFull):
		return "queue_full"
	case errors.Is(e.err, ErrOverBudget):
		return "over_budget"
	default:
		return "brownout"
	}
}

// JobStuckError is the terminal error of a job the watchdog gave up on:
// K attempts in a row made no observable progress inside the no-progress
// window.
type JobStuckError struct {
	ID      string
	Strikes int
	Window  time.Duration
}

// ErrJobStuck is the sentinel wrapped by JobStuckError.
var ErrJobStuck = errors.New("serve: job stuck")

func (e *JobStuckError) Error() string {
	return fmt.Sprintf("%v: %s made no progress within %v on %d consecutive attempts",
		ErrJobStuck, e.ID, e.Window, e.Strikes)
}

func (e *JobStuckError) Unwrap() error { return ErrJobStuck }

// Brownout ladder levels. The ladder degrades cheapest-first: renders are
// reconstructible from results, submissions can be retried, but an
// accepted placement is the product and is never shed.
const (
	brownoutOff         = 0 // normal operation
	brownoutShedRenders = 1 // SSE/SVG/render endpoints answer 503
	brownoutShedSubmits = 2 // new submissions answer 503 too
)

// brownoutName labels a ladder level for degradation entries and /stats.
func brownoutName(lvl int) string {
	switch lvl {
	case brownoutShedRenders:
		return "shed-renders"
	case brownoutShedSubmits:
		return "shed-submissions"
	default:
		return "off"
	}
}

const (
	// highWatermarkFrac of the memory budget committed enters brownout
	// level 1 (and arms memory preemption when a queued job is blocked).
	highWatermarkFrac = 0.85
	// retryAfterMin/Max clamp the backoff hint.
	retryAfterMin = time.Second
	retryAfterMax = 2 * time.Minute
	// drainRateWindow is how far back completions count toward the
	// observed drain rate, drainRateRing how many are retained.
	drainRateWindow    = time.Minute
	defaultMemFallback = 4 << 30
)

// defaultMemBudget reads the machine's available memory (3/4 of
// MemAvailable on Linux) and falls back to 4 GiB where that is not
// exposed.
func defaultMemBudget() int64 {
	if b := memAvailable(); b > 0 {
		return b / 4 * 3
	}
	return defaultMemFallback
}

// recomputeGovLocked re-derives the brownout level from the committed
// memory watermark, the memory-blocked flag and the queue depth. Called
// from updateGaugesLocked, so every scheduler transition re-evaluates the
// ladder. Transitions are recorded in the degradation log.
func (s *Scheduler) recomputeGovLocked() {
	lvl := brownoutOff
	if s.opt.MemBudget > 0 {
		frac := float64(s.committed) / float64(s.opt.MemBudget)
		if frac >= highWatermarkFrac || s.memBlocked {
			lvl = brownoutShedRenders
			if s.opt.QueueLimit > 0 && s.queue.Len() >= (s.opt.QueueLimit+1)/2 {
				lvl = brownoutShedSubmits
			}
		}
	}
	if lvl == s.brownout {
		return
	}
	from := s.brownout
	s.brownout = lvl
	if lvl > brownoutOff {
		s.rec.Count("serve.brownout.enter", 1)
	}
	s.dl.Add("brownout", brownoutName(lvl),
		fmt.Sprintf("level %d -> %d (committed %d of %d bytes, queue %d)",
			from, lvl, s.committed, s.opt.MemBudget, s.queue.Len()))
}

// brownoutState returns the current ladder level and the backoff hint a
// shed request should carry.
func (s *Scheduler) brownoutState() (int, time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.brownout, s.retryAfterLocked()
}

// retryAfterLocked computes the backoff hint: with two or more recent
// completions, the observed drain rate projects when a queue slot frees;
// otherwise the predicted wall time of the queued work divided across
// the pool stands in. Clamped to [1s, 2m].
func (s *Scheduler) retryAfterLocked() time.Duration {
	now := time.Now()
	cut := now.Add(-drainRateWindow)
	var recent []time.Time
	for _, t := range s.doneTimes {
		if t.After(cut) {
			recent = append(recent, t)
		}
	}
	var eta time.Duration
	if len(recent) >= 2 {
		span := recent[len(recent)-1].Sub(recent[0])
		if span > 0 {
			perJob := span / time.Duration(len(recent)-1)
			eta = perJob * time.Duration(s.queue.Len()+1) / time.Duration(s.opt.Workers)
		}
	}
	if eta == 0 {
		var queued time.Duration
		for _, j := range s.queue {
			queued += j.est.Wall
		}
		eta = queued / time.Duration(s.opt.Workers)
	}
	if eta < retryAfterMin {
		eta = retryAfterMin
	}
	if eta > retryAfterMax {
		eta = retryAfterMax
	}
	return eta
}

// noteDone feeds the drain-rate ring with one completion.
func (s *Scheduler) noteDone() {
	s.mu.Lock()
	s.doneTimes = append(s.doneTimes, time.Now())
	if n := len(s.doneTimes); n > 64 {
		s.doneTimes = append(s.doneTimes[:0], s.doneTimes[n-64:]...)
	}
	s.mu.Unlock()
}

// fitsLocked reports whether j's predicted footprint fits under the
// budget next to the already-running jobs. With nothing running, one job
// always fits: admission has already refused jobs bigger than the whole
// budget, and a recovered oversized job must still be allowed to drain.
func (s *Scheduler) fitsLocked(j *Job) bool {
	if s.opt.MemBudget <= 0 {
		return true
	}
	if len(s.running) == 0 {
		return true
	}
	return s.committed+j.est.PeakBytes <= s.opt.MemBudget
}

// sampleMemory publishes the measured process heap next to the committed
// estimate. Measured memory is advisory — it drives the serve.mem.measured
// gauge for operators, not the ladder: the ladder stays on the
// deterministic committed estimate so governance decisions are
// reproducible under test.
func (s *Scheduler) sampleMemory() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.mu.Lock()
	s.measured = int64(ms.HeapAlloc)
	s.mu.Unlock()
	s.rec.Gauge("serve.mem.measured", float64(ms.HeapAlloc))
}

// checkDisk flips the low-disk degradation: below DiskLowBytes of free
// space, new attempts run without checkpointing (a torn snapshot on a
// full disk is worse than losing preemptibility). Transitions are
// recorded as degrade.disk entries.
func (s *Scheduler) checkDisk() {
	if s.opt.DiskLowBytes <= 0 {
		return
	}
	free, ok := diskFree(s.stateDir)
	if !ok {
		return
	}
	low := free < s.opt.DiskLowBytes
	s.mu.Lock()
	was := s.lowDisk
	s.lowDisk = low
	s.mu.Unlock()
	if low && !was {
		s.rec.Count("serve.disk.low", 1)
		s.dl.Add("disk", "ckpt-disabled",
			fmt.Sprintf("%d bytes free < %d low watermark", free, s.opt.DiskLowBytes))
	}
	if !low && was {
		s.dl.Add("disk", "ckpt-restored", fmt.Sprintf("%d bytes free", free))
	}
}

// memoryPressure preempts the cheapest-to-resume running job when a
// queued job is memory-blocked: fewest completed levels (least work to
// redo on resume), then largest predicted footprint (frees the most
// headroom), then newest submission. At most one victim per tick, and
// only jobs whose current attempt is checkpointing (and not already
// asked to yield) qualify — a preempt request without a checkpoint path
// would never land.
func (s *Scheduler) memoryPressure() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.memBlocked || len(s.running) == 0 {
		return
	}
	var victim *Job
	var victimLevels int
	for _, r := range s.running {
		if r.preempt.Load() || !r.ckptEnabled() {
			continue
		}
		lv := r.Status().LevelsDone
		if victim == nil ||
			lv < victimLevels ||
			(lv == victimLevels && r.est.PeakBytes > victim.est.PeakBytes) ||
			(lv == victimLevels && r.est.PeakBytes == victim.est.PeakBytes && r.Seq > victim.Seq) {
			victim = r
			victimLevels = lv
		}
	}
	if victim == nil {
		return
	}
	victim.preempt.Store(true)
	s.rec.Count("serve.preempt.memory", 1)
	s.dl.Add("memory", "preempt",
		fmt.Sprintf("%s yields at its next level boundary (committed %d of %d bytes)",
			victim.ID, s.committed, s.opt.MemBudget))
}

// gcTick is the disk governor: terminal jobs beyond the retention cap
// are forgotten (memory and disk — their IDs then answer 404), orphaned
// job directories older than GCOrphanAge are removed, and non-terminal
// jobs' checkpoint directories are pruned to the newest generations.
func (s *Scheduler) gcTick() {
	var victims []*Job
	var live []*Job
	s.mu.Lock()
	if s.opt.GCKeepTerminal > 0 {
		var terminal []*Job
		for _, j := range s.order {
			if j.State().Terminal() {
				terminal = append(terminal, j)
			} else {
				live = append(live, j)
			}
		}
		if drop := len(terminal) - s.opt.GCKeepTerminal; drop > 0 {
			victims = terminal[:drop]
			for _, j := range victims {
				delete(s.jobs, j.ID)
			}
			kept := make([]*Job, 0, len(s.order)-drop)
			for _, j := range s.order {
				if _, ok := s.jobs[j.ID]; ok {
					kept = append(kept, j)
				}
			}
			s.order = kept
			s.updateGaugesLocked()
		}
	} else {
		for _, j := range s.order {
			if !j.State().Terminal() {
				live = append(live, j)
			}
		}
	}
	s.mu.Unlock()
	for _, j := range victims {
		if j.dir != "" {
			_ = os.RemoveAll(j.dir) // removal failures cost disk, nothing else
		}
		s.rec.Count("serve.gc.jobs", 1)
	}
	s.gcOrphans()
	for _, j := range live {
		if j.dir == "" {
			continue
		}
		st := ckpt.Store{Dir: j.ckptDir()}
		if n, err := st.GC(0); err == nil && n > 0 {
			s.rec.Count("serve.gc.ckpts", float64(n))
		}
	}
}

// gcOrphans removes on-disk job directories with no in-memory job. The
// age guard keeps it from racing a Submit that has created the directory
// but not yet registered the job.
func (s *Scheduler) gcOrphans() {
	dir := filepath.Join(s.stateDir, "jobs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-s.opt.GCOrphanAge)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		s.mu.Lock()
		_, known := s.jobs[e.Name()]
		s.mu.Unlock()
		if known {
			continue
		}
		info, ierr := e.Info()
		if ierr != nil || info.ModTime().After(cutoff) {
			continue
		}
		if os.RemoveAll(filepath.Join(dir, e.Name())) == nil {
			s.rec.Count("serve.gc.orphans", 1)
		}
	}
}

// governLoop is the governor goroutine: every tick it samples memory,
// checks disk, strikes stalled jobs, relieves memory pressure and
// collects garbage. It runs until Shutdown has drained the workers.
func (s *Scheduler) governLoop() {
	defer s.gwg.Done()
	t := time.NewTicker(s.opt.GovernTick)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			s.sampleMemory()
			s.checkDisk()
			s.watchdogScan()
			s.memoryPressure()
			s.gcTick()
		}
	}
}
