package serve

import (
	"context"
	"testing"
	"time"

	"fbplace/internal/gen"
)

// TestShutdownDrainsAndRestartResumes is the graceful-shutdown oracle: a
// scheduler draining mid-placement persists the job (checkpoint included),
// and a fresh scheduler over the same state directory resumes it to a
// result bit-identical to an uninterrupted run.
func TestShutdownDrainsAndRestartResumes(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewScheduler(Options{Workers: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := s1.Submit(Spec{
		Chip:  &gen.ChipSpec{NumCells: 2000, Seed: 21},
		Knobs: Knobs{MaxLevels: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitLevel(t, j1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("graceful drain failed: %v", err)
	}
	if st := j1.State(); st != StateQueued {
		t.Fatalf("drained job state: got %s, want queued (checkpointed, awaiting restart)", st)
	}

	// "Restart the daemon": a new scheduler over the same state dir.
	s2, err := NewScheduler(Options{Workers: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c, cc := context.WithTimeout(context.Background(), 60*time.Second)
		defer cc()
		if err := s2.Shutdown(c); err != nil {
			t.Errorf("s2 shutdown: %v", err)
		}
	})
	if got := s2.Obs().Counter("serve.recovered"); got != 1 {
		t.Fatalf("serve.recovered: got %g, want 1", got)
	}
	j2, ok := s2.Job(j1.ID)
	if !ok {
		t.Fatalf("job %s not recovered", j1.ID)
	}
	waitDone(t, j2, 120*time.Second)
	if j2.State() != StateDone {
		t.Fatalf("recovered job state: got %s (%s), want done", j2.State(), j2.Status().Error)
	}
	if got := s2.Obs().Counter("serve.resumes"); got < 1 {
		t.Fatalf("serve.resumes: got %g, want >= 1 (job had a checkpoint)", got)
	}
	ok2, err := verifyDirect(context.Background(), j2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok2 {
		t.Fatal("drain-restart-resume placement differs from an uninterrupted run")
	}
}

// TestShutdownDeadlineHardCancels exercises the unhappy drain: the budget
// expires, running jobs are hard-canceled, Shutdown reports the overrun —
// and the jobs still resume bit-identically on restart from their last
// level snapshot.
func TestShutdownDeadlineHardCancels(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewScheduler(Options{Workers: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := s1.Submit(Spec{
		Chip:  &gen.ChipSpec{NumCells: 2000, Seed: 22},
		Knobs: Knobs{MaxLevels: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitLevel(t, j1)
	expired, cancel := context.WithCancel(context.Background())
	cancel() // zero drain budget: force the hard-cancel path
	if err := s1.Shutdown(expired); err == nil {
		t.Fatal("Shutdown with an expired drain budget reported success")
	}
	if st := j1.State(); st != StateQueued {
		t.Fatalf("hard-canceled job state: got %s, want queued (persisted for restart)", st)
	}

	s2, err := NewScheduler(Options{Workers: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c, cc := context.WithTimeout(context.Background(), 60*time.Second)
		defer cc()
		if err := s2.Shutdown(c); err != nil {
			t.Errorf("s2 shutdown: %v", err)
		}
	})
	j2, ok := s2.Job(j1.ID)
	if !ok {
		t.Fatalf("job %s not recovered", j1.ID)
	}
	waitDone(t, j2, 120*time.Second)
	if j2.State() != StateDone {
		t.Fatalf("recovered job state: got %s (%s), want done", j2.State(), j2.Status().Error)
	}
	ok2, err := verifyDirect(context.Background(), j2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok2 {
		t.Fatal("hard-cancel-restart placement differs from an uninterrupted run")
	}
}

// TestRecoveryTerminalTombstones checks that finished jobs survive a
// restart as historical records (status visible, result not retained).
func TestRecoveryTerminalTombstones(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewScheduler(Options{Workers: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := s1.Submit(chipSpec(300, 23))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1, 60*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	s2, err := NewScheduler(Options{Workers: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c, cc := context.WithTimeout(context.Background(), 30*time.Second)
		defer cc()
		_ = s2.Shutdown(c)
	})
	j2, ok := s2.Job(j1.ID)
	if !ok {
		t.Fatalf("terminal job %s lost across restart", j1.ID)
	}
	if j2.State() != StateDone {
		t.Fatalf("tombstone state: got %s, want done", j2.State())
	}
	if _, err := j2.Result(); err == nil {
		t.Fatal("tombstone returned a result; results are not persisted")
	}
}
