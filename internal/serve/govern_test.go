package serve

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fbplace/internal/gen"
	"fbplace/internal/leakcheck"
)

// estOf prices a spec the way admission does, so tests can derive budgets
// from the same model the scheduler enforces.
func estOf(t *testing.T, spec Spec) Estimate {
	t.Helper()
	j, err := newJob("est", 0, spec, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	return j.est
}

func TestAdmissionOverBudget(t *testing.T) {
	defer leakcheck.Check(t)
	// A 1 MiB budget is below the base footprint: every job is refused.
	s := testSched(t, Options{Workers: 1, MemBudget: 1 << 20, GovernTick: -1})
	_, err := s.Submit(chipSpec(300, 60))
	var ae *AdmissionError
	if !errors.As(err, &ae) || !errors.Is(err, ErrOverBudget) {
		t.Fatalf("over-budget submit: %v, want AdmissionError wrapping ErrOverBudget", err)
	}
	if ae.Status != 503 || ae.Code() != "over_budget" {
		t.Fatalf("over-budget error: status %d code %q, want 503 over_budget", ae.Status, ae.Code())
	}
	if ae.RetryAfter != 0 {
		t.Fatalf("over-budget RetryAfter %v, want 0 — retrying cannot help", ae.RetryAfter)
	}
	if n := len(s.Jobs()); n != 0 {
		t.Fatalf("%d jobs registered after a rejected submission", n)
	}
	// The rejected job left no state directory behind.
	entries, err := os.ReadDir(filepath.Join(s.StateDir(), "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("rejected submission left %d job dirs behind", len(entries))
	}
	if c := s.Obs().Counters(); c["serve.rejected.overbudget"] != 1 {
		t.Fatalf("serve.rejected.overbudget=%g, want 1", c["serve.rejected.overbudget"])
	}
}

func TestAdmissionQueueFullAndExemptions(t *testing.T) {
	defer leakcheck.Check(t)
	s := testSched(t, Options{Workers: 1, QueueLimit: 1, GovernTick: -1})
	long := Spec{Chip: &gen.ChipSpec{NumCells: 2000, Seed: 61}, Knobs: Knobs{MaxLevels: 5}}
	a, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, a.ID, StateRunning, 30*time.Second)
	b, err := s.Submit(Spec{Chip: &gen.ChipSpec{NumCells: 2000, Seed: 62}, Knobs: Knobs{MaxLevels: 5}})
	if err != nil {
		t.Fatal(err)
	}
	// Queue full: a third distinct job bounces with 429 + Retry-After.
	_, err = s.Submit(chipSpec(400, 63))
	var ae *AdmissionError
	if !errors.As(err, &ae) || !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-bound submit: %v, want AdmissionError wrapping ErrQueueFull", err)
	}
	if ae.Status != 429 || ae.Code() != "queue_full" || ae.RetryAfter <= 0 {
		t.Fatalf("queue-full error: status %d code %q retry %v", ae.Status, ae.Code(), ae.RetryAfter)
	}
	// A duplicate of the running job coalesces onto its flight: no queue
	// slot needed, so the full queue must not refuse it.
	dup, err := s.Submit(long)
	if err != nil {
		t.Fatalf("coalesced duplicate refused by the full queue: %v", err)
	}
	waitDone(t, a, 120*time.Second)
	waitDone(t, b, 120*time.Second)
	waitDone(t, dup, 120*time.Second)
	if !dup.Status().Coalesced {
		t.Fatalf("duplicate was not coalesced: %+v", dup.Status())
	}
	// Same exemption for cache hits: refill the queue, then resubmit the
	// finished spec — it is served from the cache without a slot.
	c, err := s.Submit(Spec{Chip: &gen.ChipSpec{NumCells: 2000, Seed: 64}, Knobs: Knobs{MaxLevels: 5}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, c.ID, StateRunning, 30*time.Second)
	d, err := s.Submit(chipSpec(400, 65))
	if err != nil {
		t.Fatal(err)
	}
	hit, err := s.Submit(long)
	if err != nil {
		t.Fatalf("cache hit refused by the full queue: %v", err)
	}
	waitDone(t, hit, 30*time.Second)
	if !hit.Status().Cached {
		t.Fatalf("resubmission not served from cache: %+v", hit.Status())
	}
	waitDone(t, c, 120*time.Second)
	waitDone(t, d, 120*time.Second)
	if c := s.Obs().Counters(); c["serve.rejected.queue"] != 1 {
		t.Fatalf("serve.rejected.queue=%g, want 1", c["serve.rejected.queue"])
	}
}

// TestBrownoutLadder drives the two-level ladder with the committed
// watermark: level 1 (shed renders) when the running job's footprint
// crosses 85% of the budget, level 2 (shed submissions) when the queue is
// also half full, and back to 0 when the pressure clears.
func TestBrownoutLadder(t *testing.T) {
	defer leakcheck.Check(t)
	long := Spec{Chip: &gen.ChipSpec{NumCells: 2000, Seed: 66}, Knobs: Knobs{MaxLevels: 6}}
	est := estOf(t, long)
	// Budget ~10% above one long job: running it commits ~91% > watermark.
	s := testSched(t, Options{
		Workers:    1,
		MemBudget:  est.PeakBytes + est.PeakBytes/10,
		QueueLimit: 2,
		GovernTick: -1,
	})
	if lvl, _ := s.brownoutState(); lvl != brownoutOff {
		t.Fatalf("idle brownout level %d, want 0", lvl)
	}
	a, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, a.ID, StateRunning, 30*time.Second)
	lvl, ra := s.brownoutState()
	if lvl != brownoutShedRenders {
		t.Fatalf("brownout level %d with committed over the watermark, want 1", lvl)
	}
	if ra <= 0 {
		t.Fatal("brownout state carries no Retry-After hint")
	}
	if rd := s.Readiness(); rd.Ready || rd.Reason != "brownout" {
		t.Fatalf("readiness under brownout: %+v", rd)
	}
	// One queued job reaches half the queue bound: level 2.
	b, err := s.Submit(chipSpec(300, 67))
	if err != nil {
		t.Fatalf("level-1 brownout must not shed submissions: %v", err)
	}
	if lvl, _ := s.brownoutState(); lvl != brownoutShedSubmits {
		t.Fatalf("brownout level %d with a half-full queue, want 2", lvl)
	}
	_, err = s.Submit(chipSpec(300, 68))
	var ae *AdmissionError
	if !errors.As(err, &ae) || !errors.Is(err, ErrBrownout) {
		t.Fatalf("level-2 submit: %v, want AdmissionError wrapping ErrBrownout", err)
	}
	if ae.Status != 503 || ae.Code() != "brownout" || ae.RetryAfter <= 0 {
		t.Fatalf("brownout error: status %d code %q retry %v", ae.Status, ae.Code(), ae.RetryAfter)
	}
	waitDone(t, a, 120*time.Second)
	waitDone(t, b, 120*time.Second)
	if lvl, _ := s.brownoutState(); lvl != brownoutOff {
		t.Fatalf("brownout level %d after the load drained, want 0", lvl)
	}
	gov := s.Stats().Governance
	if gov.Brownout != 0 || gov.BrownoutMode != "off" || gov.MemCommittedBytes != 0 {
		t.Fatalf("governance stats after drain: %+v", gov)
	}
	found := false
	for _, d := range gov.Degradations {
		if strings.Contains(d, "brownout") {
			found = true
		}
	}
	if !found {
		t.Fatalf("brownout transitions missing from the degradation log: %v", gov.Degradations)
	}
	if c := s.Obs().Counters(); c["serve.brownout.enter"] == 0 || c["serve.rejected.brownout"] != 1 {
		t.Fatalf("counters: enter=%g rejected.brownout=%g", c["serve.brownout.enter"], c["serve.rejected.brownout"])
	}
}

// TestMemoryPreemptionTimeMultiplexes pins a budget that fits only one of
// two equal jobs: the blocked second job must not starve — the governor
// preempts the running one through the checkpoint path, and both finish
// with bit-identical results.
func TestMemoryPreemptionTimeMultiplexes(t *testing.T) {
	defer leakcheck.Check(t)
	big := Spec{Chip: &gen.ChipSpec{NumCells: 2000, Seed: 69}}
	est := estOf(t, big)
	s := testSched(t, Options{
		Workers:    2,
		MemBudget:  est.PeakBytes + est.PeakBytes/4, // one fits, two do not
		QueueLimit: -1,
		NoProgress: -1, // isolate memory preemption from the watchdog
		GovernTick: 25 * time.Millisecond,
	})
	a, err := s.Submit(big)
	if err != nil {
		t.Fatal(err)
	}
	waitLevel(t, a)
	b, err := s.Submit(Spec{Chip: &gen.ChipSpec{NumCells: 2000, Seed: 70}})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, a, 180*time.Second)
	waitDone(t, b, 180*time.Second)
	if a.State() != StateDone || b.State() != StateDone {
		t.Fatalf("states: a=%s b=%s, want both done", a.State(), b.State())
	}
	c := s.Obs().Counters()
	if c["serve.preempt.memory"] == 0 {
		t.Fatal("no memory preemption fired with a memory-blocked queued job")
	}
	if a.Preemptions() == 0 {
		t.Fatal("the running job was never preempted for memory")
	}
	for _, j := range []*Job{a, b} {
		if ok, err := verifyDirect(context.Background(), j); err != nil || !ok {
			t.Fatalf("job %s differs from a direct run after memory preemption (ok=%v err=%v)", j.ID, ok, err)
		}
	}
	found := false
	for _, d := range s.Stats().Governance.Degradations {
		if strings.Contains(d, "memory") {
			found = true
		}
	}
	if !found {
		t.Fatal("memory preemption missing from the degradation log")
	}
}

// crossCheckGauges asserts the serve.* gauges agree exactly with the
// scheduler's own state, under the same lock every transition updates
// them under.
func crossCheckGauges(t *testing.T, s *Scheduler) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.rec.Gauges()
	checks := []struct {
		name string
		want float64
	}{
		{"serve.queue.depth", float64(s.queue.Len())},
		{"serve.running", float64(len(s.running))},
		{"serve.jobs.known", float64(len(s.jobs))},
		{"serve.mem.committed", float64(s.committed)},
		{"serve.brownout", float64(s.brownout)},
	}
	for _, c := range checks {
		if g[c.name] != c.want {
			t.Fatalf("gauge %s=%g disagrees with scheduler state %g", c.name, g[c.name], c.want)
		}
	}
}

// TestGaugesUnderChurn randomizes submissions and cancellations (seeded,
// reproducible) and cross-checks the gauges against the scheduler state at
// every step: they must agree at every admission, promotion, preemption
// and completion transition, and settle to zero after the drain.
func TestGaugesUnderChurn(t *testing.T) {
	defer leakcheck.Check(t)
	s := testSched(t, Options{Workers: 2, QueueLimit: 8, GovernTick: 20 * time.Millisecond, NoProgress: -1})
	rng := rand.New(rand.NewSource(1))
	var jobs []*Job
	rejected := 0
	for i := 0; i < 60; i++ {
		switch rng.Intn(10) {
		case 7, 8:
			if len(jobs) > 0 {
				// Canceling terminal jobs is a valid no-op; either way the
				// gauges must stay consistent.
				_ = s.Cancel(jobs[rng.Intn(len(jobs))].ID)
			}
		case 9:
			time.Sleep(2 * time.Millisecond)
		default:
			// Duplicate seeds on purpose: cache hits and coalesced flights
			// churn the gauges differently from fresh placements.
			spec := Spec{
				Chip:     &gen.ChipSpec{NumCells: 300 + 100*rng.Intn(4), Seed: int64(rng.Intn(6))},
				Priority: rng.Intn(3),
			}
			j, err := s.Submit(spec)
			if err != nil {
				var ae *AdmissionError
				if !errors.As(err, &ae) {
					t.Fatalf("submit %d: %v", i, err)
				}
				rejected++
			} else {
				jobs = append(jobs, j)
			}
		}
		crossCheckGauges(t, s)
	}
	t.Logf("churn: %d submitted, %d rejected", len(jobs), rejected)
	for _, j := range jobs {
		waitDone(t, j, 120*time.Second)
	}
	crossCheckGauges(t, s)
	s.mu.Lock()
	depth, running := s.queue.Len(), len(s.running)
	committed := s.committed
	s.mu.Unlock()
	if depth != 0 || running != 0 || committed != 0 {
		t.Fatalf("after drain: depth=%d running=%d committed=%d, want all zero", depth, running, committed)
	}
}

// TestGCTerminalJobsAndOrphans exercises the disk governor directly:
// terminal jobs beyond the retention cap are forgotten (memory and disk),
// and orphaned job directories older than the age guard are removed.
func TestGCTerminalJobsAndOrphans(t *testing.T) {
	defer leakcheck.Check(t)
	s := testSched(t, Options{Workers: 1, GCKeepTerminal: 2, GovernTick: -1, CacheEntries: -1})
	var ids []string
	for i := 0; i < 4; i++ {
		j, err := s.Submit(chipSpec(300, int64(80+i)))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j, 60*time.Second)
		ids = append(ids, j.ID)
	}
	// An orphaned directory (a crashed submit, a manual copy) older than
	// the age guard.
	orphan := filepath.Join(s.StateDir(), "jobs", "zz-orphan")
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(orphan, old, old); err != nil {
		t.Fatal(err)
	}
	s.gcTick()
	if n := len(s.Jobs()); n != 2 {
		t.Fatalf("%d jobs known after GC, want 2", n)
	}
	for _, id := range ids[:2] {
		if _, ok := s.Job(id); ok {
			t.Fatalf("collected job %s still known", id)
		}
		if _, err := os.Stat(filepath.Join(s.StateDir(), "jobs", id)); !os.IsNotExist(err) {
			t.Fatalf("collected job %s still on disk (%v)", id, err)
		}
	}
	for _, id := range ids[2:] {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("retained job %s was collected", id)
		}
		mustResult(t, j)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan dir survived GC (%v)", err)
	}
	c := s.Obs().Counters()
	if c["serve.gc.jobs"] != 2 || c["serve.gc.orphans"] != 1 {
		t.Fatalf("GC counters: jobs=%g orphans=%g, want 2/1", c["serve.gc.jobs"], c["serve.gc.orphans"])
	}
	crossCheckGauges(t, s)
}

// TestLowDiskDisablesCheckpointing forces the low-disk flag: new attempts
// must run without a checkpoint directory (counted, and therefore not
// preemptible) and still finish correctly.
func TestLowDiskDisablesCheckpointing(t *testing.T) {
	defer leakcheck.Check(t)
	s := testSched(t, Options{Workers: 1, GovernTick: -1})
	s.mu.Lock()
	s.lowDisk = true
	s.mu.Unlock()
	j, err := s.Submit(chipSpec(500, 90))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, 60*time.Second)
	if j.State() != StateDone {
		t.Fatalf("state: %s, want done", j.State())
	}
	if s.Obs().Counters()["serve.ckpt.disabled"] != 1 {
		t.Fatal("low-disk attempt did not count serve.ckpt.disabled")
	}
	if hasCheckpoint(j.ckptDir()) {
		t.Fatal("low-disk attempt wrote checkpoints anyway")
	}
	if gov := s.Stats().Governance; !gov.LowDisk {
		t.Fatalf("governance stats do not report low disk: %+v", gov)
	}
	if ok, err := verifyDirect(context.Background(), j); err != nil || !ok {
		t.Fatalf("uncheckpointed run differs from a direct run (ok=%v err=%v)", ok, err)
	}
}
