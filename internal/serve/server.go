package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"fbplace/internal/faultsim"
	"fbplace/internal/obs"
	"fbplace/internal/plot"
)

// Server is the HTTP/JSON face of a Scheduler. Routes:
//
//	POST /jobs               submit a Spec, returns the job's Status (202)
//	GET  /jobs               list all jobs
//	GET  /jobs/{id}          one job's Status
//	GET  /jobs/{id}/events   progress stream: SSE, or JSON lines with
//	                         ?format=jsonl (replay window then live events)
//	POST /jobs/{id}/cancel   cancel a job
//	GET  /jobs/{id}/result   finished placement as JSON; ?format=hex dumps
//	                         "xbits ybits" hex float64 lines (bit-exact)
//	GET  /jobs/{id}/svg      render the finished placement
//	GET  /stats              scheduler counters, gauges and job states
//	GET  /healthz            liveness probe (never degrades)
//	GET  /readyz             readiness probe: 503 while draining, in
//	                         brownout, or with a saturated queue
//
// Every error response is one structured envelope: {code, reason,
// retry_after_s?}, with a matching Retry-After header on retryable
// rejections. Under brownout the render endpoints (events, svg) shed
// first with 503s; placements are never shed once accepted.
type Server struct {
	s   *Scheduler
	mux *http.ServeMux
}

// NewServer wraps sched in an http.Handler.
func NewServer(sched *Scheduler) *Server {
	sv := &Server{s: sched, mux: http.NewServeMux()}
	sv.mux.HandleFunc("POST /jobs", sv.submit)
	sv.mux.HandleFunc("GET /jobs", sv.list)
	sv.mux.HandleFunc("GET /jobs/{id}", sv.status)
	sv.mux.HandleFunc("GET /jobs/{id}/events", sv.events)
	sv.mux.HandleFunc("POST /jobs/{id}/cancel", sv.cancel)
	sv.mux.HandleFunc("GET /jobs/{id}/result", sv.result)
	sv.mux.HandleFunc("GET /jobs/{id}/svg", sv.svg)
	sv.mux.HandleFunc("GET /stats", sv.stats)
	sv.mux.HandleFunc("GET /healthz", sv.healthz)
	sv.mux.HandleFunc("GET /readyz", sv.readyz)
	return sv
}

func (sv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sv.mux.ServeHTTP(w, r)
}

// apiError is the structured JSON error envelope every handler returns:
// a stable machine-readable code, the human-readable reason, and — for
// retryable conditions — the server's backoff hint in seconds (also sent
// as a Retry-After header).
type apiError struct {
	Code        string  `json:"code"`
	Reason      string  `json:"reason"`
	RetryAfterS float64 `json:"retry_after_s,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// A failed write means the client went away; there is nobody left to
	// report it to.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeErrorRetry(w, status, code, err, 0)
}

// retryAfterSeconds converts a retry hint into the whole seconds spoken
// on the wire. Retry-After has no sub-second form, and rounding DOWN
// would invite the client back before the window it was told about has
// passed — so any positive hint rounds up, never below one second. Every
// Retry-After header and every retry_after_s body field must go through
// this helper so the two can never disagree.
func retryAfterSeconds(ra time.Duration) int64 {
	if ra <= 0 {
		return 0
	}
	return int64(math.Ceil(ra.Seconds()))
}

// writeErrorRetry emits the error envelope; a positive ra adds the
// Retry-After header (whole seconds, rounded up) and retry_after_s field.
func writeErrorRetry(w http.ResponseWriter, status int, code string, err error, ra time.Duration) {
	env := apiError{Code: code, Reason: err.Error()}
	if secs := retryAfterSeconds(ra); secs > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		env.RetryAfterS = float64(secs)
	}
	writeJSON(w, status, env)
}

// writeSubmitError maps a Submit error onto the envelope: admission
// rejections carry their own status (429/503) and Retry-After, client
// mistakes are 400s, shutdown and injected faults 503s.
func writeSubmitError(w http.ResponseWriter, err error) {
	var ae *AdmissionError
	var se *SpecError
	switch {
	case errors.As(err, &ae):
		writeErrorRetry(w, ae.Status, ae.Code(), err, ae.RetryAfter)
	case errors.As(err, &se):
		writeError(w, http.StatusBadRequest, "bad_spec", err)
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "shutting_down", err)
	case errors.Is(err, faultsim.ErrInjected):
		writeError(w, http.StatusServiceUnavailable, "injected", err)
	default:
		writeError(w, http.StatusBadRequest, "bad_spec", err)
	}
}

// shedRender answers true (and a 503) when the brownout ladder says
// render/stream endpoints must shed: they are the cheap load to drop and
// the result stays available once the pressure clears.
func (sv *Server) shedRender(w http.ResponseWriter) bool {
	lvl, ra := sv.s.brownoutState()
	if lvl < brownoutShedRenders {
		return false
	}
	writeErrorRetry(w, http.StatusServiceUnavailable, "brownout",
		fmt.Errorf("serve: brownout level %d (%s), render endpoints are shedding", lvl, brownoutName(lvl)), ra)
	return true
}

// maxSpecBytes bounds a POST /jobs body. Inline netlist text is the
// largest legitimate payload; instances past this belong on disk behind a
// "file" reference (fbplaced -root). The bound keeps a hostile or buggy
// client from streaming unbounded JSON into the decoder.
const maxSpecBytes = 8 << 20

func (sv *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	r.Body = http.MaxBytesReader(w, r.Body, maxSpecBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "payload_too_large",
				fmt.Errorf("request body exceeds %d bytes (use a file reference for large instances)", mbe.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "bad_spec", fmt.Errorf("decoding spec: %w", err))
		return
	}
	j, err := sv.s.Submit(spec)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (sv *Server) list(w http.ResponseWriter, _ *http.Request) {
	jobs := sv.s.Jobs()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

// job resolves the {id} path value, answering 404 itself when unknown
// (including jobs the disk governor has since garbage-collected).
func (sv *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := sv.s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_job", fmt.Errorf("%w: %s", ErrUnknownJob, r.PathValue("id")))
	}
	return j, ok
}

func (sv *Server) status(w http.ResponseWriter, r *http.Request) {
	if j, ok := sv.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (sv *Server) cancel(w http.ResponseWriter, r *http.Request) {
	j, ok := sv.job(w, r)
	if !ok {
		return
	}
	if err := sv.s.Cancel(j.ID); err != nil {
		writeError(w, http.StatusNotFound, "unknown_job", err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// events streams the job's progress events — the replay window first, then
// live events until the job ends or the client disconnects. SSE frames by
// default ("event: <type>", JSON data), plain JSON lines with
// ?format=jsonl.
func (sv *Server) events(w http.ResponseWriter, r *http.Request) {
	if sv.shedRender(w) {
		return
	}
	j, ok := sv.job(w, r)
	if !ok {
		return
	}
	jsonl := r.URL.Query().Get("format") == "jsonl"
	if jsonl {
		w.Header().Set("Content-Type", "application/jsonl")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	replay, live, cancel := j.Events(64)
	defer cancel()
	emit := func(e obs.Event) bool {
		data, err := json.Marshal(e)
		if err != nil {
			return false
		}
		if jsonl {
			_, err = fmt.Fprintf(w, "%s\n", data)
		} else {
			_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
		}
		if err != nil {
			return false // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for _, e := range replay {
		if !emit(e) {
			return
		}
	}
	for {
		select {
		case e, open := <-live:
			if !open {
				return // job reached a terminal state
			}
			if !emit(e) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// resultOf fetches the job's result, answering the error response itself
// when it is not available.
func (sv *Server) resultOf(w http.ResponseWriter, j *Job) (*Result, bool) {
	res, err := j.Result()
	if err != nil {
		if !j.State().Terminal() {
			// Still queued/running: retry later.
			writeErrorRetry(w, http.StatusAccepted, "pending", err, time.Second)
		} else {
			// Failures with a machine-readable code keep it on the wire
			// (result_uncertified: certification failed twice).
			code := "no_result"
			if ec := j.ErrorCode(); ec != "" {
				code = ec
			}
			writeError(w, http.StatusConflict, code, err)
		}
		return nil, false
	}
	return res, true
}

// resultJSON is the wire form of a finished placement.
type resultJSON struct {
	ID           string    `json:"id"`
	HPWL         float64   `json:"hpwl"`
	Levels       int       `json:"levels"`
	Violations   int       `json:"violations"`
	Overlaps     int       `json:"overlaps"`
	GlobalMS     int64     `json:"global_ms"`
	LegalMS      int64     `json:"legal_ms"`
	Certified    bool      `json:"certified,omitempty"`
	Degradations []string  `json:"degradations,omitempty"`
	X            []float64 `json:"x"`
	Y            []float64 `json:"y"`
}

func (sv *Server) result(w http.ResponseWriter, r *http.Request) {
	j, ok := sv.job(w, r)
	if !ok {
		return
	}
	res, ok := sv.resultOf(w, j)
	if !ok {
		return
	}
	if r.URL.Query().Get("format") == "hex" {
		w.Header().Set("Content-Type", "text/plain")
		w.WriteHeader(http.StatusOK)
		for i := range res.X {
			if _, err := fmt.Fprintf(w, "%016x %016x\n",
				math.Float64bits(res.X[i]), math.Float64bits(res.Y[i])); err != nil {
				return // client went away
			}
		}
		return
	}
	out := resultJSON{
		ID: j.ID, HPWL: res.HPWL, Levels: res.Levels,
		Violations: res.Violations, Overlaps: res.Overlaps,
		GlobalMS: res.GlobalTime.Milliseconds(), LegalMS: res.LegalTime.Milliseconds(),
		Certified: res.Certified,
		X:         res.X, Y: res.Y,
	}
	for _, d := range res.Degradations {
		out.Degradations = append(out.Degradations,
			fmt.Sprintf("%s -> %s (%s)", d.Stage, d.Fallback, d.Detail))
	}
	writeJSON(w, http.StatusOK, out)
}

func (sv *Server) svg(w http.ResponseWriter, r *http.Request) {
	if sv.shedRender(w) {
		return
	}
	j, ok := sv.job(w, r)
	if !ok {
		return
	}
	res, ok := sv.resultOf(w, j)
	if !ok {
		return
	}
	if j.n == nil {
		// A job recovered in a terminal state has no instance loaded.
		writeError(w, http.StatusConflict, "no_geometry", fmt.Errorf("serve: job %s predates this process; no geometry retained", j.ID))
		return
	}
	// Render from the result's positions: the job's netlist may since have
	// been rewound or reused, the result never changes.
	nn := j.n.Clone()
	copy(nn.X, res.X)
	copy(nn.Y, res.Y)
	w.Header().Set("Content-Type", "image/svg+xml")
	w.WriteHeader(http.StatusOK)
	// Mid-stream failures mean a disconnected client; the status is sent.
	_ = plot.SVG(w, nn, j.mbs, plot.Options{Title: j.ID})
}

func (sv *Server) stats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, sv.s.Stats())
}

func (sv *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write([]byte("ok " + strconv.FormatInt(time.Now().Unix(), 10) + "\n")); err != nil {
		return
	}
}

// readyz is the readiness probe: 200 while the service should receive
// traffic, 503 (with the reason and a Retry-After) while draining, in
// brownout, or with a saturated queue. Liveness stays on /healthz.
func (sv *Server) readyz(w http.ResponseWriter, _ *http.Request) {
	rd := sv.s.Readiness()
	if rd.Ready {
		writeJSON(w, http.StatusOK, rd)
		return
	}
	if secs := retryAfterSeconds(time.Duration(rd.RetryAfterS * float64(time.Second))); secs > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		// The body must quote the same whole-second figure as the header:
		// a client reading either must see one retry window, not two.
		rd.RetryAfterS = float64(secs)
	}
	writeJSON(w, http.StatusServiceUnavailable, rd)
}
