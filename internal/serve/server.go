package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"fbplace/internal/faultsim"
	"fbplace/internal/obs"
	"fbplace/internal/plot"
)

// Server is the HTTP/JSON face of a Scheduler. Routes:
//
//	POST /jobs               submit a Spec, returns the job's Status (202)
//	GET  /jobs               list all jobs
//	GET  /jobs/{id}          one job's Status
//	GET  /jobs/{id}/events   progress stream: SSE, or JSON lines with
//	                         ?format=jsonl (replay window then live events)
//	POST /jobs/{id}/cancel   cancel a job
//	GET  /jobs/{id}/result   finished placement as JSON; ?format=hex dumps
//	                         "xbits ybits" hex float64 lines (bit-exact)
//	GET  /jobs/{id}/svg      render the finished placement
//	GET  /stats              scheduler counters, gauges and job states
//	GET  /healthz            liveness probe
type Server struct {
	s   *Scheduler
	mux *http.ServeMux
}

// NewServer wraps sched in an http.Handler.
func NewServer(sched *Scheduler) *Server {
	sv := &Server{s: sched, mux: http.NewServeMux()}
	sv.mux.HandleFunc("POST /jobs", sv.submit)
	sv.mux.HandleFunc("GET /jobs", sv.list)
	sv.mux.HandleFunc("GET /jobs/{id}", sv.status)
	sv.mux.HandleFunc("GET /jobs/{id}/events", sv.events)
	sv.mux.HandleFunc("POST /jobs/{id}/cancel", sv.cancel)
	sv.mux.HandleFunc("GET /jobs/{id}/result", sv.result)
	sv.mux.HandleFunc("GET /jobs/{id}/svg", sv.svg)
	sv.mux.HandleFunc("GET /stats", sv.stats)
	sv.mux.HandleFunc("GET /healthz", sv.healthz)
	return sv
}

func (sv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sv.mux.ServeHTTP(w, r)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// A failed write means the client went away; there is nobody left to
	// report it to.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// submitCode maps a Submit error to its HTTP status: client mistakes are
// 400s, admission pressure and shutdown are 503s.
func submitCode(err error) int {
	var se *SpecError
	switch {
	case errors.As(err, &se):
		return http.StatusBadRequest
	case errors.Is(err, ErrShuttingDown), errors.Is(err, faultsim.ErrInjected):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (sv *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
		return
	}
	j, err := sv.s.Submit(spec)
	if err != nil {
		writeError(w, submitCode(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (sv *Server) list(w http.ResponseWriter, _ *http.Request) {
	jobs := sv.s.Jobs()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

// job resolves the {id} path value, answering 404 itself when unknown.
func (sv *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := sv.s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", ErrUnknownJob, r.PathValue("id")))
	}
	return j, ok
}

func (sv *Server) status(w http.ResponseWriter, r *http.Request) {
	if j, ok := sv.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (sv *Server) cancel(w http.ResponseWriter, r *http.Request) {
	j, ok := sv.job(w, r)
	if !ok {
		return
	}
	if err := sv.s.Cancel(j.ID); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// events streams the job's progress events — the replay window first, then
// live events until the job ends or the client disconnects. SSE frames by
// default ("event: <type>", JSON data), plain JSON lines with
// ?format=jsonl.
func (sv *Server) events(w http.ResponseWriter, r *http.Request) {
	j, ok := sv.job(w, r)
	if !ok {
		return
	}
	jsonl := r.URL.Query().Get("format") == "jsonl"
	if jsonl {
		w.Header().Set("Content-Type", "application/jsonl")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	replay, live, cancel := j.Events(64)
	defer cancel()
	emit := func(e obs.Event) bool {
		data, err := json.Marshal(e)
		if err != nil {
			return false
		}
		if jsonl {
			_, err = fmt.Fprintf(w, "%s\n", data)
		} else {
			_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
		}
		if err != nil {
			return false // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for _, e := range replay {
		if !emit(e) {
			return
		}
	}
	for {
		select {
		case e, open := <-live:
			if !open {
				return // job reached a terminal state
			}
			if !emit(e) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// resultOf fetches the job's result, answering the error response itself
// when it is not available.
func (sv *Server) resultOf(w http.ResponseWriter, j *Job) (*Result, bool) {
	res, err := j.Result()
	if err != nil {
		code := http.StatusConflict // terminal without result
		if !j.State().Terminal() {
			code = http.StatusAccepted // still queued/running: retry later
		}
		writeError(w, code, err)
		return nil, false
	}
	return res, true
}

// resultJSON is the wire form of a finished placement.
type resultJSON struct {
	ID           string    `json:"id"`
	HPWL         float64   `json:"hpwl"`
	Levels       int       `json:"levels"`
	Violations   int       `json:"violations"`
	Overlaps     int       `json:"overlaps"`
	GlobalMS     int64     `json:"global_ms"`
	LegalMS      int64     `json:"legal_ms"`
	Degradations []string  `json:"degradations,omitempty"`
	X            []float64 `json:"x"`
	Y            []float64 `json:"y"`
}

func (sv *Server) result(w http.ResponseWriter, r *http.Request) {
	j, ok := sv.job(w, r)
	if !ok {
		return
	}
	res, ok := sv.resultOf(w, j)
	if !ok {
		return
	}
	if r.URL.Query().Get("format") == "hex" {
		w.Header().Set("Content-Type", "text/plain")
		w.WriteHeader(http.StatusOK)
		for i := range res.X {
			if _, err := fmt.Fprintf(w, "%016x %016x\n",
				math.Float64bits(res.X[i]), math.Float64bits(res.Y[i])); err != nil {
				return // client went away
			}
		}
		return
	}
	out := resultJSON{
		ID: j.ID, HPWL: res.HPWL, Levels: res.Levels,
		Violations: res.Violations, Overlaps: res.Overlaps,
		GlobalMS: res.GlobalTime.Milliseconds(), LegalMS: res.LegalTime.Milliseconds(),
		X: res.X, Y: res.Y,
	}
	for _, d := range res.Degradations {
		out.Degradations = append(out.Degradations,
			fmt.Sprintf("%s -> %s (%s)", d.Stage, d.Fallback, d.Detail))
	}
	writeJSON(w, http.StatusOK, out)
}

func (sv *Server) svg(w http.ResponseWriter, r *http.Request) {
	j, ok := sv.job(w, r)
	if !ok {
		return
	}
	res, ok := sv.resultOf(w, j)
	if !ok {
		return
	}
	if j.n == nil {
		// A job recovered in a terminal state has no instance loaded.
		writeError(w, http.StatusConflict, fmt.Errorf("serve: job %s predates this process; no geometry retained", j.ID))
		return
	}
	// Render from the result's positions: the job's netlist may since have
	// been rewound or reused, the result never changes.
	nn := j.n.Clone()
	copy(nn.X, res.X)
	copy(nn.Y, res.Y)
	w.Header().Set("Content-Type", "image/svg+xml")
	w.WriteHeader(http.StatusOK)
	// Mid-stream failures mean a disconnected client; the status is sent.
	_ = plot.SVG(w, nn, j.mbs, plot.Options{Title: j.ID})
}

func (sv *Server) stats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, sv.s.Stats())
}

func (sv *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write([]byte("ok " + strconv.FormatInt(time.Now().Unix(), 10) + "\n")); err != nil {
		return
	}
}
