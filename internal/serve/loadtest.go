package serve

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"fbplace/internal/gen"
	"fbplace/internal/obs"
	"fbplace/internal/placer"
)

// LoadOptions configures RunLoad, the service's load-test harness.
type LoadOptions struct {
	// Jobs is how many jobs to submit (default 12), drawn from
	// gen.LoadMix(Jobs, Seed): mixed sizes, some with movebounds.
	Jobs int
	// Seed varies the mix deterministically.
	Seed int64
	// PriorityLevels cycles submissions through priorities
	// 0..PriorityLevels-1 (default 3), so higher-priority jobs land while
	// lower-priority ones run — exercising preemption.
	PriorityLevels int
	// Duplicates additionally re-submits every Duplicates-th spec once,
	// exercising the cache and single-flight under load.
	Duplicates int
	// Verify re-places every preempted or watchdog-requeued job directly
	// (no scheduler) and compares positions bit-for-bit — the
	// checkpoint-resume safety oracle.
	Verify bool
	// Stagger spaces submissions out (default 0: one burst), holding the
	// queue at depth over time — the chaos soak's sustained-load shape —
	// instead of spiking it once.
	Stagger time.Duration
	// Soak draws specs from gen.SoakMix instead of gen.LoadMix: smaller
	// instances, verbatim duplicates, and oversized over-budget bait.
	Soak bool
	// Scheduler options for the run.
	Sched Options
}

// LoadReport summarizes a load-test run.
type LoadReport struct {
	// Submitted/Rejected count admissions; Done/Failed/Canceled are the
	// terminal tallies (their sum equals Submitted when the run drained).
	Submitted, Rejected    int
	Done, Failed, Canceled int
	// Preempted is how many jobs were preempted at least once, and
	// Preemptions the total across jobs.
	Preempted, Preemptions int
	// Requeued is how many jobs the watchdog requeued at least once,
	// Stuck how many it failed terminally after the strike budget.
	Requeued, Stuck int
	// CacheHits and Coalesced count duplicate submissions served without
	// a placement of their own.
	CacheHits, Coalesced int
	// Mismatched lists preempted jobs whose final positions differ from
	// an uninterrupted direct run — always empty unless the bit-identity
	// contract is broken.
	Mismatched []string
	// NonTerminal lists jobs that failed to reach a terminal state before
	// the drain deadline (always empty on a healthy run).
	NonTerminal []string
	Elapsed     time.Duration
	// Counters is the scheduler's final serve.* counter snapshot.
	Counters map[string]float64
}

func (r *LoadReport) String() string {
	return fmt.Sprintf("load: %d submitted (%d rejected), %d done / %d failed / %d canceled / %d stuck, %d jobs preempted (%d preemptions), %d requeued, %d cache hits, %d coalesced, %d mismatched, %v",
		r.Submitted, r.Rejected, r.Done, r.Failed, r.Canceled, r.Stuck,
		r.Preempted, r.Preemptions, r.Requeued, r.CacheHits, r.Coalesced, len(r.Mismatched), r.Elapsed.Round(time.Millisecond))
}

// RunLoad drives a scheduler with a burst of mixed-size, mixed-priority
// jobs, waits for every admitted job to reach a terminal state, and
// (optionally) proves the preemption bit-identity contract by re-placing
// every preempted job uninterrupted and comparing positions bit-for-bit.
// Fault sites armed by the caller (serve.accept, ckpt.write, ...) fire
// during the run; admission rejections are counted, not fatal.
func RunLoad(ctx context.Context, opt LoadOptions) (*LoadReport, error) {
	if opt.Jobs <= 0 {
		opt.Jobs = 12
	}
	if opt.PriorityLevels <= 0 {
		opt.PriorityLevels = 3
	}
	s, err := NewScheduler(opt.Sched)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	specs := gen.LoadMix(opt.Jobs, opt.Seed)
	if opt.Soak {
		specs = gen.SoakMix(opt.Jobs, opt.Seed)
	}
	rep := &LoadReport{}
	var jobs []*Job
	submit := func(spec Spec) {
		j, err := s.Submit(spec)
		if err != nil {
			rep.Rejected++
			return
		}
		rep.Submitted++
		jobs = append(jobs, j)
	}
	for i, cs := range specs {
		cs := cs
		submit(Spec{
			Chip: &cs,
			// Later submissions get higher priorities, so they find every
			// worker busy with lower-priority work and must preempt.
			Priority: i % opt.PriorityLevels,
			Knobs:    Knobs{SkipLegalization: false},
		})
		if opt.Duplicates > 0 && i%opt.Duplicates == 0 {
			submit(Spec{Chip: &cs, Priority: i % opt.PriorityLevels})
		}
		if opt.Stagger > 0 && i < len(specs)-1 {
			select {
			case <-time.After(opt.Stagger):
			case <-ctx.Done():
			}
		}
	}

	// Drain: every admitted job must reach a terminal state.
	for _, j := range jobs {
		select {
		case <-j.Done():
		case <-ctx.Done():
			rep.NonTerminal = append(rep.NonTerminal, j.ID)
		}
	}
	if err := s.Shutdown(ctx); err != nil {
		return rep, err
	}
	rep.Elapsed = time.Since(start)

	for _, j := range jobs {
		switch j.State() {
		case StateDone:
			rep.Done++
		case StateFailed:
			rep.Failed++
		case StateCanceled:
			rep.Canceled++
		default:
			rep.NonTerminal = append(rep.NonTerminal, j.ID)
		}
		if p := j.Preemptions(); p > 0 {
			rep.Preempted++
			rep.Preemptions += p
		}
		st := j.Status()
		if st.Requeues > 0 {
			rep.Requeued++
		}
		if j.State() == StateFailed && errorTextIsStuck(st.Error) {
			rep.Stuck++
		}
		if st.Cached {
			rep.CacheHits++
		}
		if st.Coalesced {
			rep.Coalesced++
		}
	}
	rep.Counters = s.Obs().Counters()

	if opt.Verify {
		for _, j := range jobs {
			if (j.Preemptions() == 0 && j.Requeues() == 0) || j.State() != StateDone {
				continue
			}
			ok, err := verifyDirect(ctx, j)
			if err != nil {
				return rep, fmt.Errorf("serve: verifying %s: %w", j.ID, err)
			}
			if !ok {
				rep.Mismatched = append(rep.Mismatched, j.ID)
			}
		}
	}
	return rep, nil
}

// errorTextIsStuck recognizes a terminal JobStuck failure from the
// persisted error text (Result/Status carry text, not wrapped errors).
func errorTextIsStuck(text string) bool {
	return strings.Contains(text, ErrJobStuck.Error())
}

// verifyDirect re-places the job's instance uninterrupted — fresh load, no
// scheduler, no preemption, no checkpoints — and reports whether the
// positions match the served result bit-for-bit.
func verifyDirect(ctx context.Context, j *Job) (bool, error) {
	res, err := j.Result()
	if err != nil {
		return false, err
	}
	spec := j.spec
	n, mbs, err := loadInstance(&spec, j.fileRoot)
	if err != nil {
		return false, err
	}
	cfg, err := spec.Knobs.config(mbs)
	if err != nil {
		return false, err
	}
	cfg.Workers = 1
	cfg.Obs = (*obs.Recorder)(nil)
	// A certify-repaired result came from a safe-mode re-run (placer
	// internal or serve-level); reproduce it with the same conservative
	// engine set, or the comparison would hold a repaired placement
	// against the trajectory it was repaired away from.
	for _, d := range res.Degradations {
		if d.Stage == "certify" {
			cfg.SafeMode = true
			cfg.NoPairPass = true
			cfg.ParallelWindows = false
			break
		}
	}
	if _, err := placer.PlaceCtx(ctx, n, cfg); err != nil {
		return false, err
	}
	if len(n.X) != len(res.X) {
		return false, nil
	}
	for i := range n.X {
		if math.Float64bits(n.X[i]) != math.Float64bits(res.X[i]) ||
			math.Float64bits(n.Y[i]) != math.Float64bits(res.Y[i]) {
			return false, nil
		}
	}
	return true, nil
}
