package serve

import (
	"context"
	"fmt"
	"testing"
	"time"

	"fbplace/internal/faultsim"
	"fbplace/internal/leakcheck"
)

// TestChaosSoak is the overload-protection gate: a sustained mixed load
// (gen.SoakMix: verbatim duplicates, movebounds, oversized over-budget
// bait) under a tight memory budget, a bounded queue, an armed fault
// storm (checkpoint writes fail and corrupt, admissions bounce, attempts
// stall) and a fast governor. The service must shed, not crash: every
// accepted job reaches a terminal state, preempted and watchdog-requeued
// jobs finish bit-identical to uninterrupted runs, no goroutine leaks,
// and a fresh submit/result round-trip works after the storm. Runs at 1
// and 4 workers; every schedule is deterministic.
func TestChaosSoak(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			runChaosSoak(t, workers)
		})
	}
}

func runChaosSoak(t *testing.T, workers int) {
	defer leakcheck.Check(t)
	t.Cleanup(faultsim.Reset)
	arm := func(name string, sched faultsim.Schedule) {
		t.Helper()
		if err := faultsim.Arm(name, sched); err != nil {
			t.Fatal(err)
		}
	}
	arm("ckpt.write", faultsim.Schedule{Prob: 0.2, Seed: 7})
	arm("ckpt.corrupt", faultsim.Schedule{Prob: 0.2, Seed: 8})
	arm("serve.accept", faultsim.Schedule{Every: 7})
	// Two stalls, placed deterministically mid-run; each earns exactly one
	// watchdog strike and a requeue (the strike budget of 3 is never hit).
	arm("serve.stall", faultsim.Schedule{After: 3, Every: 9, Limit: 2})
	// Two silent corruptions. Certification (enabled below) must catch and
	// repair both — worst case the two fires land on one job's attempt and
	// its placer-internal repair, which the serve-level safe retry then
	// absorbs — so no job may fail terminally and nothing corrupt is served.
	arm("certify.corrupt", faultsim.Schedule{Limit: 2})

	// Budget sized to the soak mix: two mid-size jobs fit, more contend —
	// so start gating, memory preemption and the brownout ladder all
	// engage — and the 60k-cell bait jobs are over budget outright.
	est := estOf(t, chipSpec(1400, 1))
	budget := est.PeakBytes*2 + est.PeakBytes/5

	// The no-progress window must stay comfortably above the heartbeat
	// cadence of a healthy job, or slow-but-advancing jobs earn spurious
	// strikes; the race detector slows placement enough to need a wider
	// window.
	noProgress := time.Second
	if raceEnabled {
		noProgress = 5 * time.Second
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	rep, err := RunLoad(ctx, LoadOptions{
		Jobs:       28,
		Seed:       int64(workers),
		Duplicates: 5,
		Verify:     true,
		Stagger:    50 * time.Millisecond,
		Soak:       true,
		Sched: Options{
			Workers:        workers,
			StateDir:       t.TempDir(),
			MemBudget:      budget,
			QueueLimit:     6,
			NoProgress:     noProgress,
			StuckStrikes:   3,
			GovernTick:     30 * time.Millisecond,
			GCKeepTerminal: 8,
			Certify:        true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)

	// Sheds, not crashes: rejections happened (bait + admission faults +
	// possibly queue/brownout), and every accepted job is terminal.
	if rep.Rejected == 0 {
		t.Fatal("soak produced no rejections with bait jobs and admission faults armed")
	}
	if len(rep.NonTerminal) > 0 {
		t.Fatalf("non-terminal jobs after drain: %v", rep.NonTerminal)
	}
	if rep.Done != rep.Submitted || rep.Failed != 0 || rep.Stuck != 0 {
		t.Fatalf("%d of %d accepted jobs done (%d failed, %d canceled, %d stuck)",
			rep.Done, rep.Submitted, rep.Failed, rep.Canceled, rep.Stuck)
	}
	if len(rep.Mismatched) > 0 {
		t.Fatalf("bit-identity broken under chaos: %v", rep.Mismatched)
	}
	c := rep.Counters
	if c["serve.rejected.overbudget"] == 0 {
		t.Fatal("no over-budget rejection: the 60k-cell bait jobs were admitted")
	}
	// Every stall earns exactly one strike. How the canceled attempt
	// resolves depends on the interleaving — a victim that was also asked
	// to yield exits through the preemption path instead of the watchdog
	// requeue — so the recovery paths are asserted in the dedicated
	// watchdog tests, and here only that both stalls were caught. Under
	// the race detector extreme slowdowns can add strikes on healthy jobs
	// (harmless — completed levels reset them), so only the floor holds.
	if c["serve.stalls"] != 2 {
		t.Fatalf("serve.stalls=%g, want 2 (fault limit)", c["serve.stalls"])
	}
	if strikes := c["serve.watchdog.strikes"]; strikes < 2 || (!raceEnabled && strikes != 2) {
		t.Fatalf("stall accounting: strikes=%g, want exactly 2 (at least 2 under -race)", strikes)
	}
	if c["serve.watchdog.stuck"] != 0 {
		t.Fatalf("serve.watchdog.stuck=%g with a strike budget the stalls cannot reach", c["serve.watchdog.stuck"])
	}
	// Both injected corruptions were caught and repaired — how the repairs
	// split between placer-internal and serve-level safe retries depends on
	// which attempts the two fires landed on, so only the floor is exact.
	if c["certify.repair"] < 1 {
		t.Fatalf("certify.repair=%g, want >=1 with certify.corrupt armed", c["certify.repair"])
	}
	if c["certify.uncertified"] != 0 {
		t.Fatalf("certify.uncertified=%g: a job failed terminally despite the repair ladder", c["certify.uncertified"])
	}

	// Post-soak round trip on a fresh scheduler with the faults disarmed:
	// the service is fully functional after the storm.
	faultsim.Reset()
	s := testSched(t, Options{Workers: 1})
	j, err := s.Submit(chipSpec(500, 99))
	if err != nil {
		t.Fatalf("post-soak submit: %v", err)
	}
	waitDone(t, j, 60*time.Second)
	if j.State() != StateDone {
		t.Fatalf("post-soak job state: %s (%s)", j.State(), j.Status().Error)
	}
	mustResult(t, j)
}
