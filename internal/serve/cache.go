package serve

import (
	"container/list"
	"sync"
)

// resultCache is the idempotency cache: an LRU over finished placements
// keyed by the (netlist, config) trajectory fingerprints. A hit returns
// the stored positions without burning a worker; correctness rests on the
// placer's determinism contract — equal fingerprints imply bit-identical
// placements, proven by the checkpoint/resume oracle tests.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[cacheKey]*list.Element
}

type cacheEntry struct {
	key cacheKey
	res *Result
}

// newResultCache returns an LRU holding up to capacity results
// (capacity <= 0 disables caching: every get misses, every put drops).
func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, ll: list.New(), items: map[cacheKey]*list.Element{}}
}

// get returns the cached result for key and marks it most recently used.
func (c *resultCache) get(key cacheKey) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores res under key, evicting the least recently used entry when
// the cache is full. It returns how many entries were evicted.
func (c *resultCache) put(key cacheKey, res *Result) int {
	if c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return 0
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	evicted := 0
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		evicted++
	}
	return evicted
}

// len returns the number of cached results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
