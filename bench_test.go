// Benchmarks regenerating the paper's tables and figures (see DESIGN.md's
// experiment index). Each benchmark runs the corresponding experiment at a
// small scale and reports the headline quantities as custom metrics; for
// the paper-shaped output run cmd/fbpbench instead, e.g.
//
//	go run ./cmd/fbpbench -table all -scale 0.002
package fbplace

import (
	"runtime"
	"testing"

	"fbplace/internal/exp"
)

// benchScale keeps `go test -bench=.` wall-clock reasonable (every
// generated instance floors at 2000 cells).
const benchScale = 0.0002

// BenchmarkTable1FBPSizes builds and solves the FBP MinCostFlow over the
// grid refinement sequence of Table I on the largest movebounded chip.
func BenchmarkTable1FBPSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := exp.Table1(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := rows[len(rows)-1]
			b.ReportMetric(float64(last.Nodes), "nodes")
			b.ReportMetric(float64(last.Arcs), "arcs")
			b.ReportMetric(last.Ratio, "arcs/node")
		}
	}
}

// BenchmarkTable2NoMovebounds compares the RQL-style baseline and FBP on
// the first Table II chips.
func BenchmarkTable2NoMovebounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table2(benchScale, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var base, fbp float64
			for _, r := range rows {
				base += r.BaseHPWL
				fbp += r.FBPHPWL
			}
			b.ReportMetric(100*fbp/base, "HPWL%ofRQL")
		}
	}
}

// BenchmarkTable4Inclusive runs the inclusive-movebound comparison.
func BenchmarkTable4Inclusive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table4(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportCompare(b, rows)
		}
	}
}

// BenchmarkTable5Exclusive runs the exclusive-movebound comparison.
func BenchmarkTable5Exclusive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table5(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportCompare(b, rows)
		}
	}
}

func reportCompare(b *testing.B, rows []exp.CompareRow) {
	var base, fbp float64
	viol := 0
	fbpViol := 0
	for _, r := range rows {
		if !r.BaseFailed {
			base += r.BaseHPWL
			fbp += r.FBPHPWL
			viol += r.BaseViol
		}
		fbpViol += r.FBPViol
	}
	b.ReportMetric(100*fbp/base, "HPWL%ofRQL")
	b.ReportMetric(float64(viol), "RQLviol")
	b.ReportMetric(float64(fbpViol), "FBPviol")
}

// BenchmarkTable6Breakdown measures the global/legalization split of the
// FBP runs (Table VI reuses the Table IV rows).
func BenchmarkTable6Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table4(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var g, l float64
			for _, r := range rows {
				g += r.FBPGlobal.Seconds()
				l += r.FBPLegal.Seconds()
			}
			b.ReportMetric(100*g/(g+l), "global%")
		}
	}
}

// BenchmarkTable7ISPD runs the ISPD-2006-style comparison.
func BenchmarkTable7ISPD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Table7(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var kw, fbp float64
			for _, r := range rows {
				kw += r.KW.HD()
				fbp += r.FBP.HD()
			}
			b.ReportMetric(100*fbp/kw, "H+D%ofKW")
		}
	}
}

// BenchmarkParallelRealization measures the §IV.B parallel speedup.
func BenchmarkParallelRealization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.Speedup(benchScale*5, runtime.GOMAXPROCS(0))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[len(rows)-1].Speedup, "speedup")
		}
	}
}

// BenchmarkFeasibilityCheck measures the Theorem-2 feasibility check.
func BenchmarkFeasibilityCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, feasible, err := exp.FeasibilityBench(benchScale * 10); err != nil || !feasible {
			b.Fatalf("feasible=%v err=%v", feasible, err)
		}
	}
}

// BenchmarkAblationRecursive compares FBP against the recursive
// partitioning baseline (§IV motivation).
func BenchmarkAblationRecursive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationRecursive(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) == 2 {
			b.ReportMetric(100*rows[0].HPWL/rows[1].HPWL, "HPWL%ofRecursive")
			b.ReportMetric(float64(rows[1].Relaxations), "recRelaxations")
		}
	}
}

// BenchmarkAblationLocalQP measures the value of the realization-local QP.
func BenchmarkAblationLocalQP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.AblationLocalQP(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) == 2 {
			b.ReportMetric(100*rows[0].HPWL/rows[1].HPWL, "HPWL%vsNoLocalQP")
		}
	}
}
