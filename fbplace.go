// Package fbplace is a from-scratch Go implementation of flow-based
// partitioning and movebound-aware global placement, reproducing
// M. Struzyna, "Flow-based partitioning and position constraints in VLSI
// placement", DATE 2011 (the BonnPlace FBP global placer).
//
// The package is a facade over the internal engine:
//
//   - Netlists (cells, nets, pins, HPWL) and rectangle geometry.
//   - Movebounds: non-convex, possibly overlapping position constraints,
//     inclusive or exclusive, with region decomposition and a polynomial
//     feasibility check (paper Theorems 1-2).
//   - Flow-based partitioning: a global MinCostFlow model linear in the
//     number of windows plus parallel local realization (paper §IV).
//   - A complete global placer (quadratic placement + FBP over refining
//     grids + Abacus-style legalization), a force-directed RQL-style
//     baseline, and a recursive-partitioning ablation baseline.
//   - A synthetic testbed generator mirroring the paper's instances.
//
// Quick start:
//
//	inst, _ := fbplace.Generate(fbplace.ChipSpec{Name: "demo", NumCells: 5000, Seed: 1})
//	rep, err := fbplace.Place(inst.N, fbplace.Config{Movebounds: inst.Movebounds})
//	if err != nil { ... }
//	fmt.Println("HPWL:", rep.HPWL)
package fbplace

import (
	"context"
	"io"

	"fbplace/internal/certify"
	"fbplace/internal/congest"
	"fbplace/internal/detail"
	"fbplace/internal/fbp"
	"fbplace/internal/gen"
	"fbplace/internal/geom"
	"fbplace/internal/grid"
	"fbplace/internal/legalize"
	"fbplace/internal/netlist"
	"fbplace/internal/obs"
	"fbplace/internal/placer"
	"fbplace/internal/plot"
	"fbplace/internal/region"
	"fbplace/internal/rql"
)

// Geometry.
type (
	// Point is a location on the chip plane.
	Point = geom.Point
	// Rect is an axis-parallel rectangle.
	Rect = geom.Rect
	// RectSet is a finite set of rectangles (movebound areas are
	// rectangle sets, so they may be non-convex).
	RectSet = geom.RectSet
)

// Netlist model.
type (
	// Netlist is the circuit: cells, nets, and the current placement.
	Netlist = netlist.Netlist
	// Cell is a rectangular circuit element.
	Cell = netlist.Cell
	// CellID identifies a cell.
	CellID = netlist.CellID
	// Net is a weighted set of pins.
	Net = netlist.Net
	// Pin is a connection point (cell pin or fixed pad).
	Pin = netlist.Pin
)

// NoMovebound marks cells without a position constraint.
const NoMovebound = netlist.NoMovebound

// NewNetlist returns an empty netlist over the chip area.
func NewNetlist(area Rect, rowHeight float64) *Netlist {
	return netlist.New(area, rowHeight)
}

// Movebounds (paper Definition 1).
type (
	// Movebound is a named position constraint.
	Movebound = region.Movebound
	// MoveboundKind distinguishes inclusive from exclusive movebounds.
	MoveboundKind = region.Kind
)

// Movebound kinds.
const (
	// Inclusive movebounds confine their own cells only.
	Inclusive = region.Inclusive
	// Exclusive movebounds additionally block all other cells.
	Exclusive = region.Exclusive
)

// Placer configuration and results.
type (
	// Config tunes the placer (movebounds, density, clustering, mode).
	Config = placer.Config
	// Report summarizes a placement run.
	Report = placer.Report
	// Mode selects the partitioning engine.
	Mode = placer.Mode
)

// Partitioning engine modes.
const (
	// ModeFBP is the paper's flow-based partitioning (default).
	ModeFBP = placer.ModeFBP
	// ModeRecursive is the classical recursive-partitioning baseline.
	ModeRecursive = placer.ModeRecursive
)

// CertifyMode selects how much of a run is independently certified (set
// Config.Certify): nothing, the final placement, or every FBP level. A
// failed certificate triggers a safe-mode repair run with conservative
// engines; an unrepairable result surfaces as a *CertifyError.
type CertifyMode = placer.CertifyMode

// Certification modes.
const (
	// CertifyOff disables certification (default).
	CertifyOff = placer.CertifyOff
	// CertifyFinal certifies the final placement against its report.
	CertifyFinal = placer.CertifyFinal
	// CertifyEveryLevel additionally certifies flow optimality, every
	// transportation and the partition invariants at each level.
	CertifyEveryLevel = placer.CertifyEveryLevel
)

// CertifyError reports a failed certificate (layer, level, invariant and
// a concrete witness). Receiving one means both the fast run and the
// safe-mode repair produced results that failed independent verification.
type CertifyError = certify.Error

// Place runs global placement and legalization on the netlist in place.
// It returns an error when the instance provably admits no placement
// respecting the movebounds (Theorem 2) — movebounds are never silently
// violated.
func Place(n *Netlist, cfg Config) (*Report, error) {
	return placer.Place(n, cfg)
}

// PlaceCtx is Place with cancellation: a canceled or expired context
// aborts the run — within one outer iteration even deep inside the
// CG / network-simplex / transportation solvers — and returns the
// context's error. Solver fallbacks taken along the way are reported in
// Report.Degradations.
func PlaceCtx(ctx context.Context, n *Netlist, cfg Config) (*Report, error) {
	return placer.PlaceCtx(ctx, n, cfg)
}

// Checkpoint configures crash-safe snapshotting of the global placement
// loop (set Config.Checkpoint): after each level a versioned, checksummed
// snapshot is written atomically into Dir, and Resume continues from it.
type Checkpoint = placer.Checkpoint

// ResumeError explains why Resume could not use a checkpoint directory
// (no loadable snapshot, or a netlist/config mismatch).
type ResumeError = placer.ResumeError

// NumericError reports a NaN or infinite input value (net weight, pin
// offset, pad or cell position) rejected at placer entry.
type NumericError = placer.NumericError

// Resume continues an interrupted PlaceCtx run from the newest loadable
// snapshot in dir. The netlist and cfg must match the original run
// (fingerprints are checked); the continuation is bit-identical to an
// uninterrupted run with the same inputs.
func Resume(ctx context.Context, n *Netlist, dir string, cfg Config) (*Report, error) {
	return placer.Resume(ctx, n, dir, cfg)
}

// ErrPreempted matches (with errors.Is) the *PreemptedError a preempted
// run returns: the scheduler's Config.Preempt hook asked the global loop
// to stop at a level boundary, and a durable snapshot was written first —
// Resume continues the run bit-identically. See internal/serve for the
// placement service built on this.
var ErrPreempted = placer.ErrPreempted

// PreemptedError reports where a run stopped in response to
// Config.Preempt (always after its snapshot was durably written).
type PreemptedError = placer.PreemptedError

// FeasibilityReport is the result of CheckFeasibility.
type FeasibilityReport = region.FeasibilityReport

// CheckFeasibility decides in polynomial time whether a (fractional)
// placement respecting the movebounds exists (paper Theorem 2), at the
// given target density.
func CheckFeasibility(n *Netlist, movebounds []Movebound, targetDensity float64) (FeasibilityReport, error) {
	norm, err := region.Normalize(n.Area, movebounds)
	if err != nil {
		return FeasibilityReport{}, err
	}
	d := region.Decompose(n.Area, norm)
	caps := d.Capacities(n.FixedRects(), targetDensity)
	return region.CheckFeasibility(n, d, caps), nil
}

// CountViolations returns the number of movable cells violating the
// movebounds under the current placement (Definition 1).
func CountViolations(n *Netlist, movebounds []Movebound) (int, error) {
	norm, err := region.Normalize(n.Area, movebounds)
	if err != nil {
		return 0, err
	}
	return region.CheckLegal(n, norm), nil
}

// CountOverlaps returns the number of overlapping cell pairs (0 for a
// legalized placement).
func CountOverlaps(n *Netlist) int { return legalize.VerifyNoOverlaps(n) }

// Partitioning exposes one flow-based partitioning step on a k x k window
// grid (paper §IV) for callers that drive their own placement loop.
type (
	// PartitionResult maps cells to window-regions with flow statistics.
	PartitionResult = fbp.Result
	// PartitionStats are instance sizes and phase runtimes (Table I).
	PartitionStats = fbp.Stats
)

// Partition runs one FBP step: it builds the MinCostFlow model for the
// current placement on a k x k grid, solves it, and realizes the flow,
// moving cells into their assigned regions.
func Partition(n *Netlist, movebounds []Movebound, k int, targetDensity float64) (*PartitionResult, error) {
	norm, err := region.Normalize(n.Area, movebounds)
	if err != nil {
		return nil, err
	}
	if targetDensity == 0 {
		targetDensity = 0.97
	}
	d := region.Decompose(n.Area, norm)
	g, err := grid.New(n.Area, k, k)
	if err != nil {
		return nil, err
	}
	wr := grid.BuildWindowRegions(g, d, n.FixedRects(), targetDensity)
	return fbp.Partition(n, wr, fbp.DefaultConfig())
}

// ExternalFlow describes one flow-carrying external edge of the solved
// MinCostFlow model: cell area of one movebound class that must move
// between two adjacent windows (paper Figure 3/4).
type ExternalFlow struct {
	// Class names the movebound ("unbounded" for unconstrained cells).
	Class string
	// FromWindow and ToWindow are (ix, iy) window coordinates.
	FromWindow, ToWindow [2]int
	// FromDir/ToDir are the compass transit directions ("N","E","S","W").
	FromDir, ToDir string
	// Amount is the cell area shipped.
	Amount float64
}

// FlowModel builds and solves the FBP MinCostFlow model for the current
// placement on a k x k grid without realizing it, returning instance
// statistics and the flow-carrying external edges. Useful for inspecting
// the global movement plan (cmd/fbplace -dump-flow).
func FlowModel(n *Netlist, movebounds []Movebound, k int, targetDensity float64) (PartitionStats, []ExternalFlow, error) {
	norm, err := region.Normalize(n.Area, movebounds)
	if err != nil {
		return PartitionStats{}, nil, err
	}
	if targetDensity == 0 {
		targetDensity = 0.97
	}
	d := region.Decompose(n.Area, norm)
	g, err := grid.New(n.Area, k, k)
	if err != nil {
		return PartitionStats{}, nil, err
	}
	wr := grid.BuildWindowRegions(g, d, n.FixedRects(), targetDensity)
	model := fbp.BuildModel(n, wr, g.AssignCells(n))
	if err := model.Solve(); err != nil {
		return model.Stats, nil, err
	}
	var out []ExternalFlow
	for _, e := range model.Externals {
		if e.Flow <= 1e-9 {
			continue
		}
		name := "unbounded"
		if e.Class < len(norm) {
			name = norm[e.Class].Name
		}
		fx, fy := g.Coords(e.From)
		tx, ty := g.Coords(e.To)
		out = append(out, ExternalFlow{
			Class:      name,
			FromWindow: [2]int{fx, fy}, ToWindow: [2]int{tx, ty},
			FromDir: fbp.DirName(e.FromDir), ToDir: fbp.DirName(e.ToDir),
			Amount: e.Flow,
		})
	}
	return model.Stats, out, nil
}

// Observability (see internal/obs). Set Config.Obs to a Recorder to
// collect hierarchical phase spans, counters (CG iterations, network
// simplex pivots, transport solves, ...) and gauges from a placement run.
// A nil *Recorder disables recording at the cost of a nil check.
type (
	// Recorder collects spans, counters and gauges for one run.
	Recorder = obs.Recorder
	// TraceSink receives recorder events as they are produced.
	TraceSink = obs.Sink
	// TraceEvent is one exported trace event (span, counter or gauge).
	TraceEvent = obs.Event
	// JSONTraceSink writes one JSON trace event per line.
	JSONTraceSink = obs.JSONSink
)

// NewRecorder returns a recorder streaming events to sink. A nil sink
// aggregates in memory only (for WriteSummary / Counters).
func NewRecorder(sink TraceSink) *Recorder { return obs.New(sink) }

// NewJSONTraceSink returns a sink writing a JSON-lines trace to w.
func NewJSONTraceSink(w io.Writer) *JSONTraceSink { return obs.NewJSONSink(w) }

// ReadTrace parses a JSON-lines trace produced by a JSONTraceSink.
func ReadTrace(r io.Reader) ([]TraceEvent, error) { return obs.ReadTrace(r) }

// Baseline placers.
type (
	// BaselineConfig tunes the RQL-style force-directed baseline.
	BaselineConfig = rql.Config
	// BaselineReport summarizes a baseline run.
	BaselineReport = rql.Report
)

// Baseline spreading styles.
const (
	// StyleRQL is the RQL-like fixed-point spreading.
	StyleRQL = rql.StyleRQL
	// StyleKraftwerk is the Kraftwerk2-like move-based spreading.
	StyleKraftwerk = rql.StyleKraftwerk
)

// PlaceBaseline runs the force-directed baseline (global placement only;
// call Legalize afterwards for a legal placement).
func PlaceBaseline(n *Netlist, cfg BaselineConfig) (BaselineReport, error) {
	return rql.Place(n, cfg)
}

// Legalize snaps all movable cells into rows without overlaps.
func Legalize(n *Netlist) (legalize.Result, error) {
	return legalize.Legalize(n, legalize.Options{})
}

// LegalizeWithMovebounds legalizes region by region so that movebounds are
// respected (paper §III).
func LegalizeWithMovebounds(n *Netlist, movebounds []Movebound) (legalize.Result, error) {
	norm, err := region.Normalize(n.Area, movebounds)
	if err != nil {
		return legalize.Result{}, err
	}
	d := region.Decompose(n.Area, norm)
	return legalize.LegalizeWithMovebounds(n, d, legalize.Options{})
}

// Congestion estimation (RUDY).
type (
	// CongestionMap is a per-bin RUDY congestion estimate.
	CongestionMap = congest.Map
	// Hotspot is one congested bin.
	Hotspot = congest.Hotspot
)

// EstimateCongestion builds the RUDY congestion map of the current
// placement (nx, ny = 0 for automatic bin sizing).
func EstimateCongestion(n *Netlist, nx, ny int) *CongestionMap {
	return congest.Estimate(n, nx, ny)
}

// DetailOptions tunes post-legalization detailed placement.
type DetailOptions = detail.Options

// DetailResult reports detailed-placement statistics.
type DetailResult = detail.Result

// OptimizeDetailed runs legality-preserving detailed placement on a
// legalized netlist (window reordering + equal-width swaps), respecting
// the movebounds.
func OptimizeDetailed(n *Netlist, movebounds []Movebound, opt DetailOptions) (DetailResult, error) {
	norm, err := region.Normalize(n.Area, movebounds)
	if err != nil {
		return DetailResult{}, err
	}
	return detail.Optimize(n, norm, opt)
}

// RenderSVG writes an SVG rendering of the placement (cells colored by
// movebound, exclusive areas dashed) for visual inspection.
func RenderSVG(w io.Writer, n *Netlist, movebounds []Movebound, title string) error {
	return plot.SVG(w, n, movebounds, plot.Options{Title: title})
}

// Testbed generation.
type (
	// ChipSpec describes a synthetic chip.
	ChipSpec = gen.ChipSpec
	// MoveboundSpec describes one generated movebound.
	MoveboundSpec = gen.MoveboundSpec
	// Instance is a generated chip with its movebounds.
	Instance = gen.Instance
)

// Generate synthesizes a chip instance from a spec (deterministic per
// seed).
func Generate(spec ChipSpec) (*Instance, error) { return gen.Chip(spec) }
