module fbplace

go 1.22
